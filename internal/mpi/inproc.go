package mpi

import (
	"sync"
	"time"

	"panda/internal/bufpool"
)

// World is an in-process communicator running in real time: each rank is
// an ordinary goroutine, and messages pass through per-rank mailboxes.
type World struct {
	size  int
	boxes []*mailbox
}

// NewWorld creates a communicator with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{size: size, boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = &mailbox{}
		w.boxes[i].cond.L = &w.boxes[i].mu
	}
	return w
}

// Comm returns the endpoint for the given rank. Each rank's endpoint
// must be used by a single goroutine.
func (w *World) Comm(rank int) Comm {
	if rank < 0 || rank >= w.size {
		panic("mpi: rank out of range")
	}
	return &inprocComm{world: w, rank: rank}
}

// mailbox is an unbounded store of delivered messages with matched
// (source, tag) receive.
type mailbox struct {
	mu   sync.Mutex
	cond sync.Cond
	msgs []Message
}

func (b *mailbox) put(m Message) {
	b.mu.Lock()
	b.msgs = append(b.msgs, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *mailbox) get(from, tag int) Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.msgs {
			if matches(m, from, tag) {
				b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
				return m
			}
		}
		b.cond.Wait()
	}
}

// getWait is the wall-clock bounded variant of get, shared by the
// real-time transports (inproc, tcp, mesh). timeout <= 0 waits forever.
// check, when non-nil, runs under the mailbox lock on every pass and
// aborts the wait by returning a non-nil error (used for dead links and
// lost peers); it is consulted only after the queue has been scanned, so
// already-delivered messages are still receivable after a failure.
func (b *mailbox) getWait(from, tag int, timeout time.Duration, check func() error) (Message, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// The timer takes the lock before broadcasting so the wakeup
		// cannot fall between a waiter's deadline check and its Wait.
		t := time.AfterFunc(timeout, func() {
			b.mu.Lock()
			b.mu.Unlock() //nolint:staticcheck // empty section synchronizes with waiters
			b.cond.Broadcast()
		})
		defer t.Stop()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.msgs {
			if matches(m, from, tag) {
				b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
				return m, nil
			}
		}
		if check != nil {
			if err := check(); err != nil {
				return Message{}, err
			}
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return Message{}, ErrTimeout
		}
		b.cond.Wait()
	}
}

type inprocComm struct {
	world *World
	rank  int
}

func (c *inprocComm) Rank() int { return c.rank }
func (c *inprocComm) Size() int { return c.world.size }

func (c *inprocComm) Send(to, tag int, data []byte) {
	checkPeer(c, to)
	checkTag(tag)
	cp := make([]byte, len(data))
	copy(cp, data)
	c.world.boxes[to].put(Message{Source: c.rank, Tag: tag, Data: cp})
}

func (c *inprocComm) SendOwned(to, tag int, data []byte) {
	checkPeer(c, to)
	checkTag(tag)
	c.world.boxes[to].put(Message{Source: c.rank, Tag: tag, Data: data})
}

// SendVec implements VectorComm. In-process delivery parks messages in
// a mailbox indefinitely, so the borrowed payload cannot be passed
// through — it is concatenated with the header into one pooled frame
// (the same single copy a flattened send pays, minus the intermediate
// allocation). Reports false: the payload copy was not avoided.
func (c *inprocComm) SendVec(to, tag int, hdr, payload []byte) bool {
	checkPeer(c, to)
	checkTag(tag)
	frame := bufpool.GetRaw(len(hdr) + len(payload))
	copy(frame, hdr)
	copy(frame[len(hdr):], payload)
	c.world.boxes[to].put(Message{Source: c.rank, Tag: tag, Data: frame})
	return false
}

type doneRequest struct{}

func (doneRequest) Wait() {}

func (c *inprocComm) Isend(to, tag int, data []byte) Request {
	c.Send(to, tag, data)
	return doneRequest{}
}

func (c *inprocComm) Recv(from, tag int) Message {
	if from != AnySource {
		checkPeer(c, from)
	}
	return c.world.boxes[c.rank].get(from, tag)
}

// RecvTimeout implements DeadlineComm. In-process ranks cannot die, so
// the only error it returns is ErrTimeout.
func (c *inprocComm) RecvTimeout(from, tag int, timeout time.Duration) (Message, error) {
	if from != AnySource {
		checkPeer(c, from)
	}
	return c.world.boxes[c.rank].getWait(from, tag, timeout, nil)
}
