package mpi

import (
	"panda/internal/clock"
	"panda/internal/vtime"
)

// ProcBinder is implemented by communicators whose send/receive timing
// is charged to a specific simulated process. Rebinding produces a view
// of the same endpoint driven by another process of the same
// simulation, so a helper goroutine (a scheduler executor, a router)
// can use the node's rank without tripping the one-proc-per-endpoint
// rule.
type ProcBinder interface {
	BindProc(p *vtime.Proc) Comm
}

// BindProc implements ProcBinder: the view shares the world and rank
// but charges its sends and sleeps to p.
func (c *simComm) BindProc(p *vtime.Proc) Comm {
	return &simComm{world: c.world, rank: c.rank, proc: p}
}

// RebindComm returns a view of c usable from the goroutine driven by
// clk. Under a virtual clock the endpoint is rebound to that clock's
// process; real-time endpoints (inproc, tcp) are safe to share between
// goroutines on the send side and are returned unchanged.
func RebindComm(c Comm, clk clock.Clock) Comm {
	v, ok := clk.(*clock.Virtual)
	if !ok {
		return c
	}
	if b, ok := c.(ProcBinder); ok {
		return b.BindProc(v.Proc())
	}
	return c
}

// Matches reports whether m satisfies a (source, tag) receive filter,
// with AnySource/AnyTag wildcards. It is the matching rule every
// transport's Recv uses, exported for message routers layered on top.
func Matches(m Message, from, tag int) bool { return matches(m, from, tag) }
