package mpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"panda/internal/bufpool"
)

// TCP transport: the paper closes by noting Panda "will be able to run
// on a network of ordinary workstations without changing any code";
// this transport makes that literal. A Hub process accepts one
// connection per rank and routes frames between them, so each node
// needs exactly one outbound TCP connection and no listener of its own
// — the simplest thing that works across workstations behind the usual
// 1995-grade networking.
//
// Frame format (all big-endian):
//
//	hello:  u32 magic | u32 rank | u32 size
//	data:   u32 to    | u32 source | u32 tag+1 | u32 len | payload
//
// A wire tag of zero (impossible for data, whose tags are stored +1)
// marks a control frame. When a rank's connection drops, the hub
// broadcasts `u32 to | u32 deadRank | u32 0 | u32 0` (no payload) to
// every surviving rank, whose endpoint records the death so bounded
// receives can fail fast with ErrPeerLost instead of waiting out their
// timeout. A control frame with a one-byte payload of 1 is the inverse
// — a revival: a dynamic hub (ServeDynamic) broadcasts it when a freed
// rank is re-registered by a new connection, clearing the stale death
// mark on every surviving endpoint. Endpoints read control payloads by
// the length field, so the two frames coexist with old hubs that only
// ever send the zero-length death form.
//
// The hub validates that every hello agrees on the world size and that
// ranks are unique. Sends are reliable and ordered per (source,
// destination) pair, matching the in-process transports.

const tcpMagic = 0x50414e44 // "PAND"

// sessionMagic opens a session-control connection on a dynamic hub: a
// non-rank conn carrying an out-of-band dialog (the pandad attach/open
// protocol) instead of mesh frames. Hello layout matches the rank
// hello: u32 magic | u32 version | u32 reserved.
const sessionMagic = 0x50534553 // "PSES"

// SessionHello writes the session-control hello on conn, marking it as
// an out-of-band dialog connection rather than a mesh rank.
func SessionHello(conn net.Conn) error {
	var hello [12]byte
	binary.BigEndian.PutUint32(hello[0:], sessionMagic)
	binary.BigEndian.PutUint32(hello[4:], 1) // version
	_, err := conn.Write(hello[:])
	return err
}

// tagControlWire is the on-wire tag value (tag field zero) reserved for
// hub control frames.
const tagControlWire = 0

// Hub routes messages among the ranks of one TCP world. Create with
// ListenHub, then call Serve.
type Hub struct {
	ln      net.Listener
	size    int
	mu      sync.Mutex
	conns   map[int]net.Conn
	dead    map[int]bool
	wmu     []sync.Mutex // per-rank write locks
	dynamic bool         // ServeDynamic mode: ranks come and go
	closed  bool         // Close was called; accept-loop exit is orderly
}

// ListenHub starts a hub for a world of the given size on addr (e.g.
// "127.0.0.1:0"). Use Addr to learn the bound address.
func ListenHub(addr string, size int) (*Hub, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Hub{ln: ln, size: size, conns: make(map[int]net.Conn), dead: make(map[int]bool), wmu: make([]sync.Mutex, size)}, nil
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Serve accepts all ranks, then routes frames until every connection
// closes. It returns the first routing error, or nil on orderly
// shutdown (all ranks disconnected).
func (h *Hub) Serve() error {
	defer h.ln.Close()
	// Accept phase: exactly size ranks.
	for joined := 0; joined < h.size; joined++ {
		conn, err := h.ln.Accept()
		if err != nil {
			return err
		}
		rank, err := h.handshake(conn)
		if err != nil {
			conn.Close()
			return err
		}
		h.mu.Lock()
		if _, dup := h.conns[rank]; dup {
			h.mu.Unlock()
			conn.Close()
			return fmt.Errorf("mpi: duplicate rank %d", rank)
		}
		h.conns[rank] = conn
		h.mu.Unlock()
	}
	// Route phase: one goroutine per source. When a source's connection
	// ends — orderly or not — the survivors are told so their pending
	// receives from that rank can fail fast.
	errs := make(chan error, h.size)
	var wg sync.WaitGroup
	for rank, conn := range h.conns {
		wg.Add(1)
		go func(rank int, conn net.Conn) {
			defer wg.Done()
			err := h.route(rank, conn)
			h.announceDeath(rank)
			errs <- err
		}(rank, conn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ServeDynamic runs the hub in service mode: instead of waiting for
// exactly size ranks and tearing down when they disconnect, the hub
// accepts connections forever (until Close). Rank connections join and
// leave the mesh at will — a departing rank is announced dead as usual,
// but its slot can be re-registered by a later connection, which
// broadcasts a revival clearing the stale death mark. Frames addressed
// to an absent rank are dropped, not fatal. Connections opening with
// the session magic are handed to onSession (one goroutine each) for
// out-of-band dialog; the callback owns the conn. ServeDynamic returns
// nil after Close, or the accept error otherwise.
func (h *Hub) ServeDynamic(onSession func(net.Conn)) error {
	h.mu.Lock()
	h.dynamic = true
	h.mu.Unlock()
	var wg sync.WaitGroup
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			wg.Wait()
			h.mu.Lock()
			closed := h.closed
			h.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			h.serveDynConn(conn, onSession)
		}(conn)
	}
}

// serveDynConn handshakes and runs one dynamic-mode connection.
func (h *Hub) serveDynConn(conn net.Conn, onSession func(net.Conn)) {
	var buf [12]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		conn.Close()
		return
	}
	switch binary.BigEndian.Uint32(buf[0:]) {
	case sessionMagic:
		if onSession == nil {
			conn.Close()
			return
		}
		onSession(conn)
		return
	case tcpMagic:
		// fall through to rank registration
	default:
		conn.Close()
		return
	}
	rank := int(binary.BigEndian.Uint32(buf[4:]))
	size := int(binary.BigEndian.Uint32(buf[8:]))
	if size != h.size || rank < 0 || rank >= h.size {
		conn.Close()
		return
	}
	// Register, waiting briefly for a live predecessor on the same rank
	// to finish disconnecting (a freed rank can be re-issued while its
	// old connection's FIN is still in flight).
	revived := false
	for attempt := 0; ; attempt++ {
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			conn.Close()
			return
		}
		if _, live := h.conns[rank]; !live {
			revived = h.dead[rank]
			delete(h.dead, rank)
			h.conns[rank] = conn
			h.mu.Unlock()
			break
		}
		h.mu.Unlock()
		if attempt > 100 { // ~2 s: the predecessor is wedged, refuse
			conn.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	if revived {
		h.announceRevival(rank)
	}
	h.route(rank, conn) //nolint:errcheck // a broken dynamic conn only kills itself
	h.announceDeath(rank)
	h.mu.Lock()
	if h.conns[rank] == conn {
		delete(h.conns, rank)
	}
	h.mu.Unlock()
	conn.Close()
}

// announceRevival broadcasts a control frame with payload {1}: rank is
// back, clear its death mark.
func (h *Hub) announceRevival(rank int) {
	h.mu.Lock()
	type target struct {
		rank int
		conn net.Conn
	}
	var targets []target
	for r, c := range h.conns {
		if r != rank && !h.dead[r] {
			targets = append(targets, target{r, c})
		}
	}
	h.mu.Unlock()

	var frame [17]byte
	binary.BigEndian.PutUint32(frame[4:], uint32(rank))
	binary.BigEndian.PutUint32(frame[8:], tagControlWire)
	binary.BigEndian.PutUint32(frame[12:], 1)
	frame[16] = 1
	for _, t := range targets {
		binary.BigEndian.PutUint32(frame[0:], uint32(t.rank))
		h.wmu[t.rank].Lock()
		t.conn.Write(frame[:]) //nolint:errcheck // best effort
		h.wmu[t.rank].Unlock()
	}
}

// Registered reports whether rank currently has a live mesh
// connection. Registration happens asynchronously after a dial, so a
// service injecting control frames at its own ranks must see them
// registered first.
func (h *Hub) Registered(rank int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.conns[rank] != nil && !h.dead[rank]
}

// Inject delivers a frame to rank `to` as if sent by `to` itself — the
// service daemon's control path for shutdown and reconfigure frames,
// which by protocol are loopback-safe (the receiver only looks at the
// payload). Returns false when the rank is not connected.
func (h *Hub) Inject(to, tag int, data []byte) bool {
	if to < 0 || to >= h.size {
		return false
	}
	h.mu.Lock()
	dst := h.conns[to]
	gone := h.dead[to]
	h.mu.Unlock()
	if dst == nil || gone {
		return false
	}
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(to))
	binary.BigEndian.PutUint32(hdr[4:], uint32(to))
	binary.BigEndian.PutUint32(hdr[8:], uint32(tag)+1)
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(data)))
	h.wmu[to].Lock()
	defer h.wmu[to].Unlock()
	bufs := net.Buffers{hdr[:], data}
	_, err := bufs.WriteTo(dst)
	return err == nil
}

// Close shuts the hub down: the listener closes (ending ServeDynamic's
// accept loop) and every connection is torn down.
func (h *Hub) Close() error {
	h.mu.Lock()
	h.closed = true
	conns := make([]net.Conn, 0, len(h.conns))
	for _, c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	err := h.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (h *Hub) handshake(conn net.Conn) (int, error) {
	var buf [12]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return 0, fmt.Errorf("mpi: hub handshake: %w", err)
	}
	if binary.BigEndian.Uint32(buf[0:]) != tcpMagic {
		return 0, fmt.Errorf("mpi: hub handshake: bad magic")
	}
	rank := int(binary.BigEndian.Uint32(buf[4:]))
	size := int(binary.BigEndian.Uint32(buf[8:]))
	if size != h.size {
		return 0, fmt.Errorf("mpi: rank %d joined with world size %d, hub expects %d", rank, size, h.size)
	}
	if rank < 0 || rank >= h.size {
		return 0, fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, h.size)
	}
	return rank, nil
}

// announceDeath marks a rank dead and broadcasts a peer-death control
// frame to every surviving rank. Write failures are ignored: a survivor
// that is itself dying needs no notification.
func (h *Hub) announceDeath(rank int) {
	h.mu.Lock()
	if h.dead[rank] {
		h.mu.Unlock()
		return
	}
	h.dead[rank] = true
	type target struct {
		rank int
		conn net.Conn
	}
	var targets []target
	for r, c := range h.conns {
		if r != rank && !h.dead[r] {
			targets = append(targets, target{r, c})
		}
	}
	h.mu.Unlock()

	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[4:], uint32(rank))
	binary.BigEndian.PutUint32(hdr[8:], tagControlWire)
	for _, t := range targets {
		binary.BigEndian.PutUint32(hdr[0:], uint32(t.rank))
		h.wmu[t.rank].Lock()
		t.conn.Write(hdr[:]) //nolint:errcheck // best effort
		h.wmu[t.rank].Unlock()
	}
}

// route forwards frames from one source connection until EOF.
func (h *Hub) route(source int, conn net.Conn) error {
	r := bufio.NewReaderSize(conn, 256<<10)
	var hdr [16]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil // orderly disconnect
			}
			return fmt.Errorf("mpi: hub route from %d: %w", source, err)
		}
		to := int(binary.BigEndian.Uint32(hdr[0:]))
		n := int(binary.BigEndian.Uint32(hdr[12:]))
		payload := bufpool.GetRaw(n) // fully overwritten by ReadFull; recycled after relay
		if _, err := io.ReadFull(r, payload); err != nil {
			bufpool.Put(payload)
			return fmt.Errorf("mpi: hub route from %d: %w", source, err)
		}
		h.mu.Lock()
		dst := h.conns[to]
		gone := h.dead[to]
		dynamic := h.dynamic
		h.mu.Unlock()
		if dst == nil {
			bufpool.Put(payload)
			if dynamic {
				continue // destination not (or no longer) attached; drop
			}
			return fmt.Errorf("mpi: frame from %d for unknown rank %d", source, to)
		}
		if gone {
			bufpool.Put(payload)
			continue // destination died; drop, sender learns via death frame
		}
		h.wmu[to].Lock()
		bufs := net.Buffers{hdr[:], payload}
		_, err := bufs.WriteTo(dst)
		h.wmu[to].Unlock()
		bufpool.Put(payload)
		if err != nil {
			// The destination's connection broke mid-write: treat it as
			// dead rather than failing the whole hub, so the remaining
			// ranks keep communicating and learn of the loss.
			h.announceDeath(to)
		}
	}
}

// tcpComm is one rank's endpoint of a TCP world.
type tcpComm struct {
	rank, size int
	conn       net.Conn
	wmu        sync.Mutex
	box        *mailbox
	readErr    error        // guarded by box.mu
	peerDead   map[int]bool // guarded by box.mu
}

// DialComm connects rank to the hub at addr in a world of the given
// size. The returned Comm is ready once every rank has dialed; Close
// the underlying connection by calling CloseComm when done.
func DialComm(addr string, rank, size int) (Comm, error) {
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, size)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var hello [12]byte
	binary.BigEndian.PutUint32(hello[0:], tcpMagic)
	binary.BigEndian.PutUint32(hello[4:], uint32(rank))
	binary.BigEndian.PutUint32(hello[8:], uint32(size))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	c := &tcpComm{rank: rank, size: size, conn: conn, box: &mailbox{}, peerDead: make(map[int]bool)}
	c.box.cond.L = &c.box.mu
	go c.reader()
	return c, nil
}

// CloseComm tears down a TCP endpoint created by DialComm. Pending
// receives fail by panicking on connection loss, so close only after
// all communication is complete.
func CloseComm(c Comm) error {
	tc, ok := c.(*tcpComm)
	if !ok {
		return fmt.Errorf("mpi: not a TCP endpoint")
	}
	return tc.conn.Close()
}

func (c *tcpComm) reader() {
	r := bufio.NewReaderSize(c.conn, 256<<10)
	var hdr [16]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			c.failReads(err)
			return
		}
		source := int(binary.BigEndian.Uint32(hdr[4:]))
		wireTag := binary.BigEndian.Uint32(hdr[8:])
		n := int(binary.BigEndian.Uint32(hdr[12:]))
		if wireTag == tagControlWire {
			// Hub control frame: no payload (or payload 0) marks the peer
			// dead; payload {1} revives it (a dynamic hub re-issued the
			// rank to a new connection).
			revive := false
			if n > 0 {
				ctl := bufpool.GetRaw(n)
				if _, err := io.ReadFull(r, ctl); err != nil {
					bufpool.Put(ctl)
					c.failReads(err)
					return
				}
				revive = ctl[0] == 1
				bufpool.Put(ctl)
			}
			c.box.mu.Lock()
			if revive {
				delete(c.peerDead, source)
			} else {
				c.peerDead[source] = true
			}
			c.box.mu.Unlock()
			c.box.cond.Broadcast()
			continue
		}
		payload := bufpool.GetRaw(n) // fully overwritten by ReadFull
		if _, err := io.ReadFull(r, payload); err != nil {
			bufpool.Put(payload)
			c.failReads(err)
			return
		}
		c.box.put(Message{Source: source, Tag: int(wireTag) - 1, Data: payload})
	}
}

// failReads records the connection error and wakes blocked receivers,
// which then panic with the transport failure (Comm's interface has no
// error returns; a dead link is unrecoverable for an SPMD run).
func (c *tcpComm) failReads(err error) {
	c.box.mu.Lock()
	c.readErr = err
	c.box.mu.Unlock()
	c.box.cond.Broadcast()
}

func (c *tcpComm) Rank() int { return c.rank }
func (c *tcpComm) Size() int { return c.size }

func (c *tcpComm) Send(to, tag int, data []byte) {
	checkPeer(c, to)
	checkTag(tag)
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(to))
	binary.BigEndian.PutUint32(hdr[4:], uint32(c.rank))
	binary.BigEndian.PutUint32(hdr[8:], uint32(tag)+1)
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(data)))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.conn.Write(hdr[:]); err != nil {
		panic(fmt.Sprintf("mpi: tcp send: %v", err))
	}
	if len(data) > 0 {
		if _, err := c.conn.Write(data); err != nil {
			panic(fmt.Sprintf("mpi: tcp send: %v", err))
		}
	}
}

func (c *tcpComm) SendOwned(to, tag int, data []byte) { c.Send(to, tag, data) }

// SendVec implements VectorComm: the wire header, protocol header and
// payload go out in one writev, so the payload is read straight from
// the caller's buffer by the kernel — no intermediate frame. The write
// completes before SendVec returns, honoring the borrow contract.
func (c *tcpComm) SendVec(to, tag int, hdr, payload []byte) bool {
	checkPeer(c, to)
	checkTag(tag)
	var wire [16]byte
	binary.BigEndian.PutUint32(wire[0:], uint32(to))
	binary.BigEndian.PutUint32(wire[4:], uint32(c.rank))
	binary.BigEndian.PutUint32(wire[8:], uint32(tag)+1)
	binary.BigEndian.PutUint32(wire[12:], uint32(len(hdr)+len(payload)))
	bufs := net.Buffers{wire[:], hdr, payload}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := bufs.WriteTo(c.conn); err != nil {
		panic(fmt.Sprintf("mpi: tcp send: %v", err))
	}
	return true
}

func (c *tcpComm) Isend(to, tag int, data []byte) Request {
	c.Send(to, tag, data)
	return doneRequest{}
}

func (c *tcpComm) Recv(from, tag int) Message {
	if from != AnySource {
		checkPeer(c, from)
	}
	b := c.box
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.msgs {
			if matches(m, from, tag) {
				b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
				return m
			}
		}
		if c.readErr != nil {
			panic(fmt.Sprintf("mpi: tcp recv on rank %d: %v", c.rank, c.readErr))
		}
		b.cond.Wait()
	}
}

// RecvTimeout implements DeadlineComm. It fails with ErrPeerLost when
// this endpoint's own link is down, or when waiting on a specific rank
// the hub has announced dead. AnySource waits do not fail on peer
// deaths — another rank may still satisfy them — and rely on the
// timeout bound instead.
func (c *tcpComm) RecvTimeout(from, tag int, timeout time.Duration) (Message, error) {
	if from != AnySource {
		checkPeer(c, from)
	}
	return c.box.getWait(from, tag, timeout, func() error {
		if c.readErr != nil {
			return fmt.Errorf("mpi: tcp recv on rank %d: %v: %w", c.rank, c.readErr, ErrPeerLost)
		}
		if from != AnySource && c.peerDead[from] {
			return fmt.Errorf("mpi: rank %d is gone: %w", from, ErrPeerLost)
		}
		return nil
	})
}

// PeerLost implements PeerChecker using the hub's death notifications.
func (c *tcpComm) PeerLost(rank int) bool {
	c.box.mu.Lock()
	defer c.box.mu.Unlock()
	return c.peerDead[rank]
}
