package mpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"panda/internal/bufpool"
)

// TCP transport: the paper closes by noting Panda "will be able to run
// on a network of ordinary workstations without changing any code";
// this transport makes that literal. A Hub process accepts one
// connection per rank and routes frames between them, so each node
// needs exactly one outbound TCP connection and no listener of its own
// — the simplest thing that works across workstations behind the usual
// 1995-grade networking.
//
// Frame format (all big-endian):
//
//	hello:  u32 magic | u32 rank | u32 size
//	data:   u32 to    | u32 source | u32 tag+1 | u32 len | payload
//
// A wire tag of zero (impossible for data, whose tags are stored +1)
// marks a control frame. The only control frame is peer death: when a
// rank's connection drops, the hub broadcasts `u32 to | u32 deadRank |
// u32 0 | u32 0` to every surviving rank, whose endpoint records the
// death so bounded receives can fail fast with ErrPeerLost instead of
// waiting out their timeout.
//
// The hub validates that every hello agrees on the world size and that
// ranks are unique. Sends are reliable and ordered per (source,
// destination) pair, matching the in-process transports.

const tcpMagic = 0x50414e44 // "PAND"

// tagControlWire is the on-wire tag value (tag field zero) reserved for
// hub control frames.
const tagControlWire = 0

// Hub routes messages among the ranks of one TCP world. Create with
// ListenHub, then call Serve.
type Hub struct {
	ln    net.Listener
	size  int
	mu    sync.Mutex
	conns map[int]net.Conn
	dead  map[int]bool
	wmu   []sync.Mutex // per-rank write locks
}

// ListenHub starts a hub for a world of the given size on addr (e.g.
// "127.0.0.1:0"). Use Addr to learn the bound address.
func ListenHub(addr string, size int) (*Hub, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Hub{ln: ln, size: size, conns: make(map[int]net.Conn), dead: make(map[int]bool), wmu: make([]sync.Mutex, size)}, nil
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Serve accepts all ranks, then routes frames until every connection
// closes. It returns the first routing error, or nil on orderly
// shutdown (all ranks disconnected).
func (h *Hub) Serve() error {
	defer h.ln.Close()
	// Accept phase: exactly size ranks.
	for joined := 0; joined < h.size; joined++ {
		conn, err := h.ln.Accept()
		if err != nil {
			return err
		}
		rank, err := h.handshake(conn)
		if err != nil {
			conn.Close()
			return err
		}
		h.mu.Lock()
		if _, dup := h.conns[rank]; dup {
			h.mu.Unlock()
			conn.Close()
			return fmt.Errorf("mpi: duplicate rank %d", rank)
		}
		h.conns[rank] = conn
		h.mu.Unlock()
	}
	// Route phase: one goroutine per source. When a source's connection
	// ends — orderly or not — the survivors are told so their pending
	// receives from that rank can fail fast.
	errs := make(chan error, h.size)
	var wg sync.WaitGroup
	for rank, conn := range h.conns {
		wg.Add(1)
		go func(rank int, conn net.Conn) {
			defer wg.Done()
			err := h.route(rank, conn)
			h.announceDeath(rank)
			errs <- err
		}(rank, conn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (h *Hub) handshake(conn net.Conn) (int, error) {
	var buf [12]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return 0, fmt.Errorf("mpi: hub handshake: %w", err)
	}
	if binary.BigEndian.Uint32(buf[0:]) != tcpMagic {
		return 0, fmt.Errorf("mpi: hub handshake: bad magic")
	}
	rank := int(binary.BigEndian.Uint32(buf[4:]))
	size := int(binary.BigEndian.Uint32(buf[8:]))
	if size != h.size {
		return 0, fmt.Errorf("mpi: rank %d joined with world size %d, hub expects %d", rank, size, h.size)
	}
	if rank < 0 || rank >= h.size {
		return 0, fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, h.size)
	}
	return rank, nil
}

// announceDeath marks a rank dead and broadcasts a peer-death control
// frame to every surviving rank. Write failures are ignored: a survivor
// that is itself dying needs no notification.
func (h *Hub) announceDeath(rank int) {
	h.mu.Lock()
	if h.dead[rank] {
		h.mu.Unlock()
		return
	}
	h.dead[rank] = true
	type target struct {
		rank int
		conn net.Conn
	}
	var targets []target
	for r, c := range h.conns {
		if r != rank && !h.dead[r] {
			targets = append(targets, target{r, c})
		}
	}
	h.mu.Unlock()

	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[4:], uint32(rank))
	binary.BigEndian.PutUint32(hdr[8:], tagControlWire)
	for _, t := range targets {
		binary.BigEndian.PutUint32(hdr[0:], uint32(t.rank))
		h.wmu[t.rank].Lock()
		t.conn.Write(hdr[:]) //nolint:errcheck // best effort
		h.wmu[t.rank].Unlock()
	}
}

// route forwards frames from one source connection until EOF.
func (h *Hub) route(source int, conn net.Conn) error {
	r := bufio.NewReaderSize(conn, 256<<10)
	var hdr [16]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil // orderly disconnect
			}
			return fmt.Errorf("mpi: hub route from %d: %w", source, err)
		}
		to := int(binary.BigEndian.Uint32(hdr[0:]))
		n := int(binary.BigEndian.Uint32(hdr[12:]))
		payload := bufpool.GetRaw(n) // fully overwritten by ReadFull; recycled after relay
		if _, err := io.ReadFull(r, payload); err != nil {
			bufpool.Put(payload)
			return fmt.Errorf("mpi: hub route from %d: %w", source, err)
		}
		h.mu.Lock()
		dst := h.conns[to]
		gone := h.dead[to]
		h.mu.Unlock()
		if dst == nil {
			bufpool.Put(payload)
			return fmt.Errorf("mpi: frame from %d for unknown rank %d", source, to)
		}
		if gone {
			bufpool.Put(payload)
			continue // destination died; drop, sender learns via death frame
		}
		h.wmu[to].Lock()
		bufs := net.Buffers{hdr[:], payload}
		_, err := bufs.WriteTo(dst)
		h.wmu[to].Unlock()
		bufpool.Put(payload)
		if err != nil {
			// The destination's connection broke mid-write: treat it as
			// dead rather than failing the whole hub, so the remaining
			// ranks keep communicating and learn of the loss.
			h.announceDeath(to)
		}
	}
}

// tcpComm is one rank's endpoint of a TCP world.
type tcpComm struct {
	rank, size int
	conn       net.Conn
	wmu        sync.Mutex
	box        *mailbox
	readErr    error        // guarded by box.mu
	peerDead   map[int]bool // guarded by box.mu
}

// DialComm connects rank to the hub at addr in a world of the given
// size. The returned Comm is ready once every rank has dialed; Close
// the underlying connection by calling CloseComm when done.
func DialComm(addr string, rank, size int) (Comm, error) {
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, size)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var hello [12]byte
	binary.BigEndian.PutUint32(hello[0:], tcpMagic)
	binary.BigEndian.PutUint32(hello[4:], uint32(rank))
	binary.BigEndian.PutUint32(hello[8:], uint32(size))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	c := &tcpComm{rank: rank, size: size, conn: conn, box: &mailbox{}, peerDead: make(map[int]bool)}
	c.box.cond.L = &c.box.mu
	go c.reader()
	return c, nil
}

// CloseComm tears down a TCP endpoint created by DialComm. Pending
// receives fail by panicking on connection loss, so close only after
// all communication is complete.
func CloseComm(c Comm) error {
	tc, ok := c.(*tcpComm)
	if !ok {
		return fmt.Errorf("mpi: not a TCP endpoint")
	}
	return tc.conn.Close()
}

func (c *tcpComm) reader() {
	r := bufio.NewReaderSize(c.conn, 256<<10)
	var hdr [16]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			c.failReads(err)
			return
		}
		source := int(binary.BigEndian.Uint32(hdr[4:]))
		wireTag := binary.BigEndian.Uint32(hdr[8:])
		n := int(binary.BigEndian.Uint32(hdr[12:]))
		if wireTag == tagControlWire {
			// Peer-death notification from the hub.
			c.box.mu.Lock()
			c.peerDead[source] = true
			c.box.mu.Unlock()
			c.box.cond.Broadcast()
			continue
		}
		payload := bufpool.GetRaw(n) // fully overwritten by ReadFull
		if _, err := io.ReadFull(r, payload); err != nil {
			bufpool.Put(payload)
			c.failReads(err)
			return
		}
		c.box.put(Message{Source: source, Tag: int(wireTag) - 1, Data: payload})
	}
}

// failReads records the connection error and wakes blocked receivers,
// which then panic with the transport failure (Comm's interface has no
// error returns; a dead link is unrecoverable for an SPMD run).
func (c *tcpComm) failReads(err error) {
	c.box.mu.Lock()
	c.readErr = err
	c.box.mu.Unlock()
	c.box.cond.Broadcast()
}

func (c *tcpComm) Rank() int { return c.rank }
func (c *tcpComm) Size() int { return c.size }

func (c *tcpComm) Send(to, tag int, data []byte) {
	checkPeer(c, to)
	checkTag(tag)
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(to))
	binary.BigEndian.PutUint32(hdr[4:], uint32(c.rank))
	binary.BigEndian.PutUint32(hdr[8:], uint32(tag)+1)
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(data)))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.conn.Write(hdr[:]); err != nil {
		panic(fmt.Sprintf("mpi: tcp send: %v", err))
	}
	if len(data) > 0 {
		if _, err := c.conn.Write(data); err != nil {
			panic(fmt.Sprintf("mpi: tcp send: %v", err))
		}
	}
}

func (c *tcpComm) SendOwned(to, tag int, data []byte) { c.Send(to, tag, data) }

// SendVec implements VectorComm: the wire header, protocol header and
// payload go out in one writev, so the payload is read straight from
// the caller's buffer by the kernel — no intermediate frame. The write
// completes before SendVec returns, honoring the borrow contract.
func (c *tcpComm) SendVec(to, tag int, hdr, payload []byte) bool {
	checkPeer(c, to)
	checkTag(tag)
	var wire [16]byte
	binary.BigEndian.PutUint32(wire[0:], uint32(to))
	binary.BigEndian.PutUint32(wire[4:], uint32(c.rank))
	binary.BigEndian.PutUint32(wire[8:], uint32(tag)+1)
	binary.BigEndian.PutUint32(wire[12:], uint32(len(hdr)+len(payload)))
	bufs := net.Buffers{wire[:], hdr, payload}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := bufs.WriteTo(c.conn); err != nil {
		panic(fmt.Sprintf("mpi: tcp send: %v", err))
	}
	return true
}

func (c *tcpComm) Isend(to, tag int, data []byte) Request {
	c.Send(to, tag, data)
	return doneRequest{}
}

func (c *tcpComm) Recv(from, tag int) Message {
	if from != AnySource {
		checkPeer(c, from)
	}
	b := c.box
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.msgs {
			if matches(m, from, tag) {
				b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
				return m
			}
		}
		if c.readErr != nil {
			panic(fmt.Sprintf("mpi: tcp recv on rank %d: %v", c.rank, c.readErr))
		}
		b.cond.Wait()
	}
}

// RecvTimeout implements DeadlineComm. It fails with ErrPeerLost when
// this endpoint's own link is down, or when waiting on a specific rank
// the hub has announced dead. AnySource waits do not fail on peer
// deaths — another rank may still satisfy them — and rely on the
// timeout bound instead.
func (c *tcpComm) RecvTimeout(from, tag int, timeout time.Duration) (Message, error) {
	if from != AnySource {
		checkPeer(c, from)
	}
	return c.box.getWait(from, tag, timeout, func() error {
		if c.readErr != nil {
			return fmt.Errorf("mpi: tcp recv on rank %d: %v: %w", c.rank, c.readErr, ErrPeerLost)
		}
		if from != AnySource && c.peerDead[from] {
			return fmt.Errorf("mpi: rank %d is gone: %w", from, ErrPeerLost)
		}
		return nil
	})
}

// PeerLost implements PeerChecker using the hub's death notifications.
func (c *tcpComm) PeerLost(rank int) bool {
	c.box.mu.Lock()
	defer c.box.mu.Unlock()
	return c.peerDead[rank]
}
