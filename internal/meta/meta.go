// Package meta provides self-describing schema files for Panda data
// sets. The paper's ArrayGroup constructor names a schema file
// ("simulation2.schema") that records the group's layout; this package
// defines that file as JSON, and implements the sequential-consumer
// side of the paper's migration story: given the schema and the
// per-I/O-node files, reassemble any array into a single row-major
// stream on an ordinary workstation — no Panda deployment required.
package meta

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"panda/internal/array"
	"panda/internal/core"
)

// ArrayMeta describes one array of a group.
type ArrayMeta struct {
	Name     string   `json:"name"`
	Shape    []int    `json:"shape"`
	ElemSize int      `json:"elem_size"`
	MemDist  []string `json:"mem_dist"`
	MemMesh  []int    `json:"mem_mesh"`
	DiskDist []string `json:"disk_dist"`
	DiskMesh []int    `json:"disk_mesh"`
}

// GroupMeta is the schema file contents: everything a consumer needs
// to interpret a Panda file set.
type GroupMeta struct {
	// Format identifies the file ("panda-schema") and Version its
	// revision.
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Group is the ArrayGroup name.
	Group string `json:"group"`
	// IONodes is the number of I/O nodes the data is striped over.
	IONodes int `json:"io_nodes"`
	// Arrays lists the group members in write order.
	Arrays []ArrayMeta `json:"arrays"`
}

const (
	formatName    = "panda-schema"
	formatVersion = 1
)

func distStrings(ds []array.Dist) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

func parseDists(ss []string) ([]array.Dist, error) {
	out := make([]array.Dist, len(ss))
	for i, s := range ss {
		switch s {
		case "BLOCK":
			out[i] = array.Block
		case "*":
			out[i] = array.Star
		default:
			return nil, fmt.Errorf("meta: unknown distribution %q", s)
		}
	}
	return out, nil
}

// FromSpecs builds the schema document for a group.
func FromSpecs(group string, ioNodes int, specs []core.ArraySpec) GroupMeta {
	g := GroupMeta{Format: formatName, Version: formatVersion, Group: group, IONodes: ioNodes}
	for _, s := range specs {
		g.Arrays = append(g.Arrays, ArrayMeta{
			Name:     s.Name,
			Shape:    append([]int(nil), s.Mem.Shape...),
			ElemSize: s.ElemSize,
			MemDist:  distStrings(s.Mem.Dist),
			MemMesh:  append([]int(nil), s.Mem.Mesh...),
			DiskDist: distStrings(s.Disk.Dist),
			DiskMesh: append([]int(nil), s.Disk.Mesh...),
		})
	}
	return g
}

// Specs reconstructs the array specs from a schema document.
func (g GroupMeta) Specs() ([]core.ArraySpec, error) {
	if g.Format != formatName {
		return nil, fmt.Errorf("meta: not a panda schema file (format %q)", g.Format)
	}
	if g.Version != formatVersion {
		return nil, fmt.Errorf("meta: unsupported schema version %d", g.Version)
	}
	specs := make([]core.ArraySpec, len(g.Arrays))
	for i, a := range g.Arrays {
		md, err := parseDists(a.MemDist)
		if err != nil {
			return nil, err
		}
		dd, err := parseDists(a.DiskDist)
		if err != nil {
			return nil, err
		}
		mem, err := array.NewSchema(a.Shape, md, a.MemMesh)
		if err != nil {
			return nil, fmt.Errorf("meta: array %s memory schema: %w", a.Name, err)
		}
		disk, err := array.NewSchema(a.Shape, dd, a.DiskMesh)
		if err != nil {
			return nil, fmt.Errorf("meta: array %s disk schema: %w", a.Name, err)
		}
		specs[i] = core.ArraySpec{Name: a.Name, ElemSize: a.ElemSize, Mem: mem, Disk: disk}
	}
	return specs, nil
}

// Find locates one array's spec by name.
func (g GroupMeta) Find(name string) (core.ArraySpec, error) {
	specs, err := g.Specs()
	if err != nil {
		return core.ArraySpec{}, err
	}
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return core.ArraySpec{}, fmt.Errorf("meta: group %s has no array %q", g.Group, name)
}

// Save writes the schema document to path.
func Save(path string, g GroupMeta) error {
	b, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads a schema document from path.
func Load(path string) (GroupMeta, error) {
	var g GroupMeta
	b, err := os.ReadFile(path)
	if err != nil {
		return g, err
	}
	if err := json.Unmarshal(b, &g); err != nil {
		return g, fmt.Errorf("meta: %s: %w", path, err)
	}
	if g.Format != formatName {
		return g, fmt.Errorf("meta: %s is not a panda schema file", path)
	}
	if g.IONodes <= 0 {
		return g, fmt.Errorf("meta: %s: non-positive io_nodes", path)
	}
	return g, nil
}

// FileOpener resolves one I/O node's file for reading. Assemble uses
// it to abstract over directory layouts.
type FileOpener func(ioNode int, fileName string) (io.ReaderAt, int64, error)

// Assemble streams one array, stored under its disk schema across
// IONodes files, into out as a single row-major (traditional order)
// byte stream — the paper's migration of Panda data to a sequential
// platform, generalized beyond BLOCK,*,* schemas. Memory use is
// bounded by one chunk row at a time.
func Assemble(out io.WriterAt, g GroupMeta, name, suffix string, open FileOpener) error {
	spec, err := g.Find(name)
	if err != nil {
		return err
	}
	whole := array.Box(spec.Mem.Shape)
	elem := int64(spec.ElemSize)
	offsets := make([]int64, g.IONodes)
	files := make(map[int]io.ReaderAt)

	for idx := 0; idx < spec.Disk.NumChunks(); idx++ {
		server := idx % g.IONodes
		chunk := spec.Disk.Chunk(idx)
		if chunk.IsEmpty() {
			continue
		}
		f, ok := files[server]
		if !ok {
			fileName := spec.FileName(suffix, server)
			r, size, err := open(server, fileName)
			if err != nil {
				return fmt.Errorf("meta: array %s: %w", name, err)
			}
			if want := fileBytes(spec, g.IONodes, server); size < want {
				return fmt.Errorf("meta: file %s holds %d bytes, schema needs %d", fileName, size, want)
			}
			files[server] = r
			f = r
		}
		chunkOff := offsets[server]
		offsets[server] += chunk.NumElems() * elem

		// Copy the chunk run by run. Runs that are contiguous in the
		// global row-major output are also contiguous in the chunk's
		// file layout: a run pins the outer dimensions, ranges over
		// one, and spans the full array extent in the inner ones —
		// which the chunk therefore also covers fully.
		for _, run := range array.ContiguousRuns(whole, chunk) {
			inStart, ok := array.ContiguousIn(chunk, run)
			if !ok {
				return fmt.Errorf("meta: internal error: run %v not contiguous in chunk %v", run, chunk)
			}
			outStart := whole.LinearIndex(run.Lo)
			if err := copyRange(out, outStart*elem, f, chunkOff+inStart*elem, run.NumElems()*elem); err != nil {
				return fmt.Errorf("meta: reading %s chunk %d: %w", name, idx, err)
			}
		}
	}
	return nil
}

// copyRange moves n bytes from src@srcOff to dst@dstOff in bounded
// pieces.
func copyRange(dst io.WriterAt, dstOff int64, src io.ReaderAt, srcOff, n int64) error {
	const chunk = 1 << 20
	buf := make([]byte, min64(n, chunk))
	for n > 0 {
		step := min64(n, chunk)
		if _, err := src.ReadAt(buf[:step], srcOff); err != nil {
			return err
		}
		if _, err := dst.WriteAt(buf[:step], dstOff); err != nil {
			return err
		}
		srcOff += step
		dstOff += step
		n -= step
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// fileBytes is the expected size of an array's file on one I/O node.
func fileBytes(spec core.ArraySpec, ioNodes, server int) int64 {
	var total int64
	for idx := server; idx < spec.Disk.NumChunks(); idx += ioNodes {
		total += spec.Disk.Chunk(idx).NumElems() * int64(spec.ElemSize)
	}
	return total
}
