package meta

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"panda/internal/array"
	"panda/internal/core"
	"panda/internal/storage"
)

func sampleSpecs() []core.ArraySpec {
	shape := []int{16, 12, 8}
	mem := array.MustSchema(shape, []array.Dist{array.Block, array.Block, array.Block}, []int{2, 2, 2})
	disk := array.MustSchema(shape, []array.Dist{array.Block, array.Star, array.Star}, []int{3})
	disk2 := array.MustSchema([]int{24, 10}, []array.Dist{array.Star, array.Block}, []int{4})
	mem2 := array.MustSchema([]int{24, 10}, []array.Dist{array.Block, array.Star}, []int{8})
	return []core.ArraySpec{
		{Name: "temperature", ElemSize: 4, Mem: mem, Disk: disk},
		{Name: "density", ElemSize: 8, Mem: mem2, Disk: disk2},
	}
}

func TestSchemaSaveLoadRoundTrip(t *testing.T) {
	specs := sampleSpecs()
	g := FromSpecs("Sim2", 3, specs)
	path := filepath.Join(t.TempDir(), "sim.schema.json")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Group != "Sim2" || got.IONodes != 3 {
		t.Fatalf("header %+v", got)
	}
	back, err := got.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(specs) {
		t.Fatalf("%d specs", len(back))
	}
	for i := range specs {
		if back[i].Name != specs[i].Name || back[i].ElemSize != specs[i].ElemSize {
			t.Fatalf("spec %d: %+v", i, back[i])
		}
		if !array.SameDecomposition(back[i].Mem, specs[i].Mem) ||
			!array.SameDecomposition(back[i].Disk, specs[i].Disk) {
			t.Fatalf("spec %d schemas differ", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"format":"not-panda"}`), 0o644)
	if _, err := Load(bad); err == nil {
		t.Fatal("foreign json accepted")
	}
	os.WriteFile(bad, []byte(`{{{`), 0o644)
	if _, err := Load(bad); err == nil {
		t.Fatal("malformed json accepted")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFindUnknownArray(t *testing.T) {
	g := FromSpecs("g", 2, sampleSpecs())
	if _, err := g.Find("nope"); err == nil {
		t.Fatal("unknown array found")
	}
	if s, err := g.Find("density"); err != nil || s.Name != "density" {
		t.Fatalf("Find = %+v, %v", s, err)
	}
}

// memWriterAt collects WriteAt output in memory.
type memWriterAt struct{ b []byte }

func (m *memWriterAt) WriteAt(p []byte, off int64) (int, error) {
	end := off + int64(len(p))
	if end > int64(len(m.b)) {
		grown := make([]byte, end)
		copy(grown, m.b)
		m.b = grown
	}
	copy(m.b[off:end], p)
	return len(p), nil
}

// writeThroughPanda runs a real collective write and returns the disks.
func writeThroughPanda(t *testing.T, cfg core.Config, specs []core.ArraySpec, shape []int) []storage.Disk {
	t.Helper()
	disks := make([]storage.Disk, cfg.NumServers)
	for i := range disks {
		disks[i] = storage.NewMemDisk()
	}
	if err := core.RunReal(cfg, disks, func(cl *core.Client) error {
		bufs := make([][]byte, len(specs))
		for i, spec := range specs {
			bufs[i] = make([]byte, spec.MemChunkBytes(cl.Rank()))
			fillPattern(bufs[i], spec.MemChunk(cl.Rank()), spec.Mem.Shape)
		}
		return cl.WriteArrays("", specs, bufs)
	}); err != nil {
		t.Fatal(err)
	}
	return disks
}

func fillPattern(buf []byte, r array.Region, shape []int) {
	global := array.Box(shape)
	if r.IsEmpty() {
		return
	}
	pt := append([]int(nil), r.Lo...)
	for {
		gi := global.LinearIndex(pt)
		li := r.LinearIndex(pt)
		binary.LittleEndian.PutUint32(buf[li*4:], uint32(gi*2654435761+97))
		d := r.Rank() - 1
		for d >= 0 {
			pt[d]++
			if pt[d] < r.Hi[d] {
				break
			}
			pt[d] = r.Lo[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

func diskOpener(disks []storage.Disk) FileOpener {
	return func(ion int, name string) (io.ReaderAt, int64, error) {
		f, err := disks[ion].Open(name)
		if err != nil {
			return nil, 0, err
		}
		size, err := f.Size()
		if err != nil {
			return nil, 0, err
		}
		return f, size, nil
	}
}

func TestAssembleReproducesRowMajorOrder(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	for iter := 0; iter < 25; iter++ {
		shape := []int{2 + rnd.Intn(12), 2 + rnd.Intn(12), 2 + rnd.Intn(8)}
		nc := 4
		ion := 1 + rnd.Intn(4)
		mem := array.MustSchema(shape, []array.Dist{array.Block, array.Block, array.Star}, []int{2, 2})
		// Random disk schema.
		var disk array.Schema
		switch rnd.Intn(3) {
		case 0:
			disk = array.MustSchema(shape, []array.Dist{array.Block, array.Star, array.Star}, []int{1 + rnd.Intn(5)})
		case 1:
			disk = array.MustSchema(shape, []array.Dist{array.Block, array.Block, array.Star}, []int{2, 1 + rnd.Intn(3)})
		default:
			disk = array.MustSchema(shape, []array.Dist{array.Star, array.Star, array.Block}, []int{1 + rnd.Intn(4)})
		}
		specs := []core.ArraySpec{{Name: "vol", ElemSize: 4, Mem: mem, Disk: disk}}
		cfg := core.Config{NumClients: nc, NumServers: ion, SubchunkBytes: 512}
		disks := writeThroughPanda(t, cfg, specs, shape)

		g := FromSpecs("grp", ion, specs)
		var out memWriterAt
		if err := Assemble(&out, g, "vol", "", diskOpener(disks)); err != nil {
			t.Fatalf("iter %d (%v / %v): %v", iter, mem, disk, err)
		}
		whole := array.Box(shape)
		want := make([]byte, whole.NumElems()*4)
		fillPattern(want, whole, shape)
		if !bytes.Equal(out.b, want) {
			t.Fatalf("iter %d: assembled stream is not the row-major array (mem %v disk %v)", iter, mem, disk)
		}
	}
}

func TestAssembleMissingFileFails(t *testing.T) {
	specs := sampleSpecs()[:1]
	g := FromSpecs("grp", 2, specs)
	var out memWriterAt
	err := Assemble(&out, g, "temperature", "", func(ion int, name string) (io.ReaderAt, int64, error) {
		return nil, 0, fmt.Errorf("no such file %s", name)
	})
	if err == nil {
		t.Fatal("missing file not reported")
	}
}

func TestAssembleTruncatedFileFails(t *testing.T) {
	shape := []int{8, 8}
	mem := array.MustSchema(shape, []array.Dist{array.Block, array.Star}, []int{4})
	specs := []core.ArraySpec{{Name: "t", ElemSize: 4, Mem: mem, Disk: mem}}
	g := FromSpecs("grp", 2, specs)
	var out memWriterAt
	err := Assemble(&out, g, "t", "", func(ion int, name string) (io.ReaderAt, int64, error) {
		return bytes.NewReader([]byte{1, 2, 3}), 3, nil
	})
	if err == nil {
		t.Fatal("truncated file not reported")
	}
}

func TestAssembleWithSuffix(t *testing.T) {
	// Timestep files: assemble a specific step.
	shape := []int{8, 8}
	mem := array.MustSchema(shape, []array.Dist{array.Block, array.Star}, []int{4})
	specs := []core.ArraySpec{{Name: "ts", ElemSize: 4, Mem: mem, Disk: mem}}
	cfg := core.Config{NumClients: 4, NumServers: 2}
	disks := make([]storage.Disk, 2)
	for i := range disks {
		disks[i] = storage.NewMemDisk()
	}
	if err := core.RunReal(cfg, disks, func(cl *core.Client) error {
		bufs := make([][]byte, 1)
		bufs[0] = make([]byte, specs[0].MemChunkBytes(cl.Rank()))
		fillPattern(bufs[0], specs[0].MemChunk(cl.Rank()), shape)
		return cl.WriteArrays(".t7", specs, bufs)
	}); err != nil {
		t.Fatal(err)
	}
	g := FromSpecs("grp", 2, specs)
	var out memWriterAt
	if err := Assemble(&out, g, "ts", ".t7", diskOpener(disks)); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, array.Box(shape).NumElems()*4)
	fillPattern(want, array.Box(shape), shape)
	if !bytes.Equal(out.b, want) {
		t.Fatal("suffix assembly produced wrong bytes")
	}
	// Wrong suffix: files missing.
	var out2 memWriterAt
	if err := Assemble(&out2, g, "ts", ".t8", diskOpener(disks)); err == nil {
		t.Fatal("assembly of missing timestep succeeded")
	}
}
