package clock

import (
	"testing"
	"time"

	"panda/internal/vtime"
)

func TestRealClockAdvances(t *testing.T) {
	c := NewReal()
	a := c.Now()
	c.Sleep(2 * time.Millisecond)
	b := c.Now()
	if b-a < 2*time.Millisecond {
		t.Fatalf("Sleep(2ms) advanced only %v", b-a)
	}
}

func TestVirtualClockFollowsSimulation(t *testing.T) {
	sim := vtime.New()
	var before, after time.Duration
	sim.Spawn("p", func(p *vtime.Proc) {
		c := NewVirtual(p)
		before = c.Now()
		c.Sleep(5 * time.Second) // virtual: must not take wall time
		after = c.Now()
		if c.Proc() != p {
			t.Error("Proc accessor lost the process")
		}
	})
	start := time.Now()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if before != 0 || after != 5*time.Second {
		t.Fatalf("virtual clock: before=%v after=%v", before, after)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("virtual sleep took %v of wall time", wall)
	}
}

func TestVirtualClocksShareOneTimeline(t *testing.T) {
	sim := vtime.New()
	var seen []time.Duration
	for i := 1; i <= 3; i++ {
		i := i
		sim.Spawn("p", func(p *vtime.Proc) {
			c := NewVirtual(p)
			c.Sleep(time.Duration(i) * time.Second)
			seen = append(seen, c.Now())
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		if seen[i] != want {
			t.Fatalf("timeline: %v", seen)
		}
	}
}
