package clock

import (
	"panda/internal/vtime"
)

// Pipe is a bounded single-producer single-consumer queue between two
// concurrent activities of one Domain — the inter-stage buffer of a
// pipeline. Push blocks while the pipe is full, Pop blocks while it is
// empty, and Close (producer side) makes Pop return ok=false once the
// buffered values drain.
type Pipe interface {
	Push(v any)
	Pop() (any, bool)
	Close()
}

// Domain is a Clock that can also host concurrent activities sharing its
// notion of time: real clocks spawn goroutines, virtual clocks spawn
// simulated processes. It is what lets one node run internal pipeline
// stages (e.g. a storage stage overlapping a network stage) identically
// under the wall clock and under a deterministic simulation.
type Domain interface {
	Clock
	// Go starts fn concurrently in this time domain. fn receives its own
	// Clock, which it must use instead of the parent's (a virtual clock
	// is bound to the process that owns it).
	Go(name string, fn func(clk Clock))
	// NewPipe returns a bounded SPSC pipe usable between this domain's
	// activities.
	NewPipe(capacity int) Pipe
}

// Go implements Domain: real-time activities are plain goroutines
// sharing the wall clock.
func (c *Real) Go(name string, fn func(clk Clock)) {
	go fn(c)
}

// NewPipe implements Domain with a channel-backed pipe.
func (c *Real) NewPipe(capacity int) Pipe {
	if capacity < 1 {
		capacity = 1
	}
	return &realPipe{ch: make(chan any, capacity)}
}

type realPipe struct {
	ch chan any
}

func (p *realPipe) Push(v any) { p.ch <- v }

func (p *realPipe) Pop() (any, bool) {
	v, ok := <-p.ch
	return v, ok
}

func (p *realPipe) Close() { close(p.ch) }

// Go implements Domain: virtual-time activities are simulated processes
// of the same Sim, each with its own Virtual clock.
func (c *Virtual) Go(name string, fn func(clk Clock)) {
	c.proc.Sim().Spawn(name, func(p *vtime.Proc) {
		fn(NewVirtual(p))
	})
}

// NewPipe implements Domain over vtime.Pipe.
func (c *Virtual) NewPipe(capacity int) Pipe {
	return &virtualPipe{p: vtime.NewPipe[any](c.proc.Sim(), capacity)}
}

type virtualPipe struct {
	p *vtime.Pipe[any]
}

func (p *virtualPipe) Push(v any)       { p.p.Push(v) }
func (p *virtualPipe) Pop() (any, bool) { return p.p.Pop() }
func (p *virtualPipe) Close()           { p.p.Close() }
