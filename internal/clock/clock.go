// Package clock abstracts the flow of time so that the same node code
// can run against the wall clock (functional tests, examples) or against
// a vtime simulation (performance experiments).
package clock

import (
	"time"

	"panda/internal/vtime"
)

// Clock measures elapsed time since an arbitrary origin and lets the
// caller wait.
type Clock interface {
	// Now reports the time elapsed since the clock's origin.
	Now() time.Duration
	// Sleep pauses the caller for d.
	Sleep(d time.Duration)
}

// Real is a wall-clock Clock anchored at its creation.
type Real struct {
	origin time.Time
}

// NewReal returns a wall clock whose origin is the moment of the call.
func NewReal() *Real { return &Real{origin: time.Now()} }

// Now reports wall time elapsed since creation.
func (c *Real) Now() time.Duration { return time.Since(c.origin) }

// Sleep pauses the goroutine for d of wall time.
func (c *Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual adapts a simulated process to the Clock interface. Each node
// process in a simulation gets its own Virtual wrapping its Proc.
type Virtual struct {
	proc *vtime.Proc
}

// NewVirtual returns a Clock driven by p's simulation.
func NewVirtual(p *vtime.Proc) *Virtual { return &Virtual{proc: p} }

// Now reports the current virtual time.
func (c *Virtual) Now() time.Duration { return c.proc.Now() }

// Sleep advances virtual time by d, yielding to other processes.
func (c *Virtual) Sleep(d time.Duration) { c.proc.Sleep(d) }

// Proc exposes the underlying simulated process, for components that
// need richer vtime primitives.
func (c *Virtual) Proc() *vtime.Proc { return c.proc }
