package storage

import "time"

// AIXModel is the cost model for one I/O node's AIX file system,
// calibrated from Table 1 of the paper:
//
//	disk peak transfer rate      3.0  MB/s
//	measured AIX read peak       2.85 MB/s  (1 MB requests)
//	measured AIX write peak      2.23 MB/s  (1 MB requests)
//	file system block size       4 KB
//
// The model charges each request a fixed per-request overhead plus media
// time at the raw disk rate. The overheads are derived so that a 1 MB
// sequential request achieves exactly the measured peak:
//
//	overhead = 1MB * (1/peak - 1/rate)
//
// which reproduces the paper's observation that throughput declines for
// requests below 1 MB (the per-request overhead stops amortizing).
// Non-sequential requests additionally pay a seek penalty. Reads whose
// byte range is entirely in the buffer cache are served at memory speed.
type AIXModel struct {
	// MediaRate is the raw disk transfer rate in bytes per second.
	MediaRate float64
	// PeakRead and PeakWrite cap the sustained throughput of large
	// requests at the measured file system peaks: the paper reports
	// the AIX peaks at 1 MB requests as maxima, not as points on a
	// still-rising curve. Zero disables the cap.
	PeakRead, PeakWrite float64
	// ReadOverhead and WriteOverhead are the fixed per-request costs.
	ReadOverhead  time.Duration
	WriteOverhead time.Duration
	// SeekPenalty is charged when a request does not start where the
	// previous request on this disk ended.
	SeekPenalty time.Duration
	// CachedRate is the service rate for cache hits, bytes per second.
	CachedRate float64
	// BlockSize is the file system block size in bytes.
	BlockSize int
	// CacheBytes bounds the buffer cache size; zero disables caching.
	CacheBytes int64
}

// Reference throughputs measured on the NAS SP2 (Table 1), used both to
// calibrate the model and to normalize experiment results.
const (
	// AIXPeakRead is the measured peak AIX read throughput, bytes/s.
	AIXPeakRead = 2.85e6
	// AIXPeakWrite is the measured peak AIX write throughput, bytes/s.
	AIXPeakWrite = 2.23e6
	// AIXMediaRate is the raw disk peak transfer rate, bytes/s.
	AIXMediaRate = 3.0e6
	// calibrationRequest is the request size at which the measured
	// peaks were obtained.
	calibrationRequest = 1 << 20
)

// overheadFor derives the fixed per-request cost that makes a request of
// calibrationRequest bytes at the media rate land on the measured peak.
func overheadFor(peak, media float64) time.Duration {
	secs := calibrationRequest * (1/peak - 1/media)
	return time.Duration(secs * float64(time.Second))
}

// SP2AIX returns the cost model of one NAS SP2 I/O node.
func SP2AIX() AIXModel {
	return AIXModel{
		MediaRate:     AIXMediaRate,
		PeakRead:      AIXPeakRead,
		PeakWrite:     AIXPeakWrite,
		ReadOverhead:  overheadFor(AIXPeakRead, AIXMediaRate),
		WriteOverhead: overheadFor(AIXPeakWrite, AIXMediaRate),
		SeekPenalty:   12 * time.Millisecond,
		CachedRate:    80e6,
		BlockSize:     4096,
		CacheBytes:    64 << 20,
	}
}

func (m AIXModel) mediaTime(n int) time.Duration {
	return time.Duration(float64(n) / m.MediaRate * float64(time.Second))
}

func (m AIXModel) cachedTime(n int) time.Duration {
	return time.Duration(float64(n) / m.CachedRate * float64(time.Second))
}

// peakFloor is the minimum service time imposed by the measured peak:
// requests larger than the calibration size do not keep amortizing the
// per-request overhead below the peak-rate cost.
func peakFloor(n int, peak float64) time.Duration {
	if peak <= 0 {
		return 0
	}
	return time.Duration(float64(n) / peak * float64(time.Second))
}

// ReadCost is the service time of a read of n bytes. cached reports a
// full cache hit; seek reports a non-sequential start.
func (m AIXModel) ReadCost(n int, cached, seek bool) time.Duration {
	if cached {
		return m.cachedTime(n)
	}
	d := m.ReadOverhead + m.mediaTime(n)
	if floor := peakFloor(n, m.PeakRead); d < floor {
		d = floor
	}
	if seek {
		d += m.SeekPenalty
	}
	return d
}

// WriteCost is the service time of a write of n bytes.
func (m AIXModel) WriteCost(n int, seek bool) time.Duration {
	d := m.WriteOverhead + m.mediaTime(n)
	if floor := peakFloor(n, m.PeakWrite); d < floor {
		d = floor
	}
	if seek {
		d += m.SeekPenalty
	}
	return d
}

// ReadThroughput reports the modelled sustained throughput (bytes/s) of
// repeated sequential uncached reads of n bytes, for calibration tables.
func (m AIXModel) ReadThroughput(n int) float64 {
	return float64(n) / m.ReadCost(n, false, false).Seconds()
}

// WriteThroughput is the write analogue of ReadThroughput.
func (m AIXModel) WriteThroughput(n int) float64 {
	return float64(n) / m.WriteCost(n, false).Seconds()
}
