package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// The array catalog: the persistent registry a resident Panda service
// (pandad) keeps of every array it has ever created — name, element
// size, schema fingerprint, the full encoded schema pair, and the last
// committed epoch. The catalog is what lets a client session open an
// array by name long after the session that created it disconnected,
// and what lets a restarted daemon re-serve its arrays after a crash.
//
// Durability uses the same discipline as the epoch manifests: the file
// is a CRC32C-guarded record written with WriteFileAtomic, so a crash
// mid-update leaves either the old catalog or the new one, and a torn
// or bit-rotted file is detected at load rather than silently trusted.

// CatalogFileName is the catalog's file name on the master server's
// disk. The scrubber classifies it as a legacy (non-epoch) file, so a
// catalog never trips fsck.
const CatalogFileName = "panda.catalog"

// catalogMagic marks a catalog file: "PCAT".
const catalogMagic = 0x50434154

// CatalogEntry records one array.
type CatalogEntry struct {
	// Name is the array name, unique in the catalog.
	Name string `json:"name"`
	// ElemSize is the element size in bytes.
	ElemSize int `json:"elem_size"`
	// Fingerprint is the schema fingerprint (element size + disk +
	// memory schema CRC32C) — the same value the plan cache keys on. A
	// session whose spec fingerprint disagrees is refused.
	Fingerprint uint32 `json:"fingerprint"`
	// Spec is the full encoded ArraySpec (core wire schema format),
	// kept opaque here so the storage layer stays protocol-free.
	Spec []byte `json:"spec"`
	// Epoch is the last committed epoch known for the array's plain
	// (suffix-less) file set, refreshed from the commit decision
	// records at recovery.
	Epoch uint64 `json:"epoch"`
	// Owners lists the server slots holding the array's committed
	// chunks — recorded by the elastic daemon after each rebalance so a
	// later membership change can tell which arrays still reference a
	// departed server. Empty means "unrecorded" (pre-elastic catalogs),
	// which readers treat as "all servers".
	Owners []int `json:"owners,omitempty"`
}

// Catalog is the in-memory catalog bound to its backing disk. All
// methods are safe for concurrent use; every mutation persists before
// returning.
type Catalog struct {
	mu      sync.Mutex
	disk    Disk
	entries map[string]CatalogEntry
}

// LoadCatalog opens (or implicitly creates) the catalog on d. A missing
// file yields an empty catalog; a present-but-corrupt file is an error,
// never silently discarded.
func LoadCatalog(d Disk) (*Catalog, error) {
	c := &Catalog{disk: d, entries: make(map[string]CatalogEntry)}
	data, err := readFile(d, CatalogFileName)
	if err != nil {
		return c, nil // absent: fresh catalog
	}
	if len(data) < 12 {
		return nil, fmt.Errorf("storage: catalog: truncated header (%d bytes)", len(data))
	}
	if m := binary.BigEndian.Uint32(data[0:]); m != catalogMagic {
		return nil, fmt.Errorf("storage: catalog: bad magic %#x", m)
	}
	sum := binary.BigEndian.Uint32(data[4:])
	n := binary.BigEndian.Uint32(data[8:])
	if int(n) != len(data)-12 {
		return nil, fmt.Errorf("storage: catalog: length %d, have %d payload bytes", n, len(data)-12)
	}
	payload := data[12:]
	if got := CRC32C(payload); got != sum {
		return nil, fmt.Errorf("storage: catalog: CRC mismatch (stored %#x, computed %#x)", sum, got)
	}
	var list []CatalogEntry
	if err := json.Unmarshal(payload, &list); err != nil {
		return nil, fmt.Errorf("storage: catalog: %w", err)
	}
	for _, e := range list {
		c.entries[e.Name] = e
	}
	return c, nil
}

// Get returns the entry for name.
func (c *Catalog) Get(name string) (CatalogEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	return e, ok
}

// Put inserts or replaces an entry and persists the catalog.
func (c *Catalog) Put(e CatalogEntry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[e.Name] = e
	return c.save()
}

// SetEpoch updates an entry's committed epoch and persists. Unknown
// names are ignored (the caller raced a concurrent catalog rewrite).
func (c *Catalog) SetEpoch(name string, epoch uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok || e.Epoch == epoch {
		return nil
	}
	e.Epoch = epoch
	c.entries[name] = e
	return c.save()
}

// SetOwners records the server slots holding an array's committed
// chunks and persists. Unknown names are ignored.
func (c *Catalog) SetOwners(name string, owners []int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return nil
	}
	e.Owners = append([]int(nil), owners...)
	sort.Ints(e.Owners)
	c.entries[name] = e
	return c.save()
}

// ReconcileOwners rewrites every ownership record that references a
// server the alive predicate rejects, keeping only surviving owners —
// the catalog half of retiring a departed I/O node. It returns the
// names whose records changed. An entry left with no surviving owner
// keeps its (now wholly stale) record and is reported so the caller can
// re-write the array; silently emptying it would erase the only hint
// that data must be recovered.
func (c *Catalog) ReconcileOwners(alive func(slot int) bool) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var changed []string
	dirty := false
	for name, e := range c.entries {
		if len(e.Owners) == 0 {
			continue
		}
		var kept []int
		for _, o := range e.Owners {
			if alive(o) {
				kept = append(kept, o)
			}
		}
		if len(kept) == len(e.Owners) {
			continue
		}
		changed = append(changed, name)
		if len(kept) == 0 {
			continue // stale record retained deliberately; see doc comment
		}
		e.Owners = kept
		c.entries[name] = e
		dirty = true
	}
	sort.Strings(changed)
	if !dirty {
		return changed, nil
	}
	return changed, c.save()
}

// Entries returns every entry, sorted by name.
func (c *Catalog) Entries() []CatalogEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CatalogEntry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of catalogued arrays.
func (c *Catalog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// save persists the catalog under c.mu: magic + CRC32C + length header,
// JSON payload sorted by name, atomic replace.
func (c *Catalog) save() error {
	list := make([]CatalogEntry, 0, len(c.entries))
	for _, e := range c.entries {
		list = append(list, e)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	payload, err := json.Marshal(list)
	if err != nil {
		return err
	}
	buf := make([]byte, 12+len(payload))
	binary.BigEndian.PutUint32(buf[0:], catalogMagic)
	binary.BigEndian.PutUint32(buf[4:], CRC32C(payload))
	binary.BigEndian.PutUint32(buf[8:], uint32(len(payload)))
	copy(buf[12:], payload)
	return WriteFileAtomic(c.disk, CatalogFileName, buf)
}
