package storage

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"regexp"
	"strconv"
	"strings"
)

// Epoch manifests and atomic commit.
//
// Every collective write lands on each server as an *epoch*: the data
// goes to an epoch-suffixed temp file plus a small manifest describing
// exactly what the file must contain (schema fingerprint, chunk list,
// per-sub-chunk CRC32C, byte counts). After a Sync the epoch is
// PREPARED; committing it is a pair of renames — data, then manifest —
// so a crash at any instant leaves either the old committed epoch or
// the new one, never a torn mix. The previously committed epoch is
// retained one deep under a ".prev" suffix, giving Restart a fallback
// when the newest epoch fails verification.
//
// On-disk naming, for a base file name like "state.ckpt.0":
//
//	state.ckpt.0            committed data (plain name: concatenation,
//	                        migration, and legacy readers keep working)
//	state.ckpt.0.mfst       committed manifest
//	state.ckpt.0.e7         epoch 7 temp data (PREPARED, not committed)
//	state.ckpt.0.e7.mfst    epoch 7 temp manifest
//	state.ckpt.0.prev       previously committed data (one deep)
//	state.ckpt.0.prev.mfst  its manifest
//	state.ckpt.decision     the master server's commit record for the
//	                        array+suffix key (master's disk only)
//	<anything>.tmp          atomic-write scratch; leftovers are debris

// crcTable is the Castagnoli polynomial — hardware-accelerated CRC32C.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CRC32C returns the Castagnoli CRC of p.
func CRC32C(p []byte) uint32 { return crc32.Checksum(p, crcTable) }

// ManifestVersion identifies the manifest schema for forward evolution.
const ManifestVersion = 1

// ManifestChunk records one disk chunk stored in a server's file.
type ManifestChunk struct {
	// ChunkIdx is the chunk's index in the array's disk schema.
	ChunkIdx int `json:"chunk"`
	// Offset is the chunk's byte offset in this server's file.
	Offset int64 `json:"off"`
	// Bytes is the chunk's size.
	Bytes int64 `json:"bytes"`
}

// ManifestSub records the checksum of one sub-chunk-sized extent.
type ManifestSub struct {
	Offset int64  `json:"off"`
	Bytes  int64  `json:"bytes"`
	CRC    uint32 `json:"crc"`
}

// Manifest describes what one server's file of one array must contain
// for one epoch. It is written next to the epoch's data and promoted
// with it at commit.
type Manifest struct {
	Version int `json:"version"`
	// Array and Suffix identify the collective file set; Server is the
	// writing server's index.
	Array  string `json:"array"`
	Suffix string `json:"suffix"`
	Server int    `json:"server"`
	// Epoch is the commit epoch this manifest belongs to (first is 1).
	Epoch uint64 `json:"epoch"`
	// SchemaSum fingerprints the array's element size and disk schema;
	// a reader whose schema disagrees must not trust the chunk list.
	SchemaSum uint32 `json:"schema"`
	// TotalBytes is the data file's required size.
	TotalBytes int64 `json:"total"`
	// Degraded marks an epoch written with one or more servers dead:
	// this file may carry chunks reassigned from the dead servers.
	Degraded bool `json:"degraded,omitempty"`
	// Chunks lists the disk chunks in file order; Subs carries the
	// CRC32C of every sub-chunk extent, in file order.
	Chunks []ManifestChunk `json:"chunks"`
	Subs   []ManifestSub   `json:"subs"`
}

// --- naming -------------------------------------------------------------

// ManifestName returns the committed manifest name for a data file.
func ManifestName(base string) string { return base + ".mfst" }

// EpochName returns the temp data name of one epoch of a data file.
func EpochName(base string, epoch uint64) string {
	return fmt.Sprintf("%s.e%d", base, epoch)
}

// EpochManifestName returns the temp manifest name of one epoch.
func EpochManifestName(base string, epoch uint64) string {
	return ManifestName(EpochName(base, epoch))
}

// PrevName returns the retained previous-epoch data name.
func PrevName(base string) string { return base + ".prev" }

// DecisionName returns the master server's commit-record name for an
// array+suffix key (e.g. "state.ckpt").
func DecisionName(key string) string { return key + ".decision" }

// epochRe matches "<base>.e<digits>" temp data names.
var epochRe = regexp.MustCompile(`^(.*)\.e(\d+)$`)

// splitEpochName parses a temp data name into base and epoch.
func splitEpochName(name string) (base string, epoch uint64, ok bool) {
	m := epochRe.FindStringSubmatch(name)
	if m == nil {
		return "", 0, false
	}
	e, err := strconv.ParseUint(m[2], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return m[1], e, true
}

// --- small-file plumbing ------------------------------------------------

// WriteFileAtomic durably replaces name with data: write to a ".tmp"
// sibling, sync, close, rename. A crash leaves either the old file or
// the new one (plus, at worst, a ".tmp" leftover the scrubber sweeps).
func WriteFileAtomic(d Disk, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := d.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return d.Rename(tmp, name)
}

// readFile slurps one whole file.
func readFile(d Disk, name string) ([]byte, error) {
	f, err := d.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, sz)
	if sz > 0 {
		if _, err := f.ReadAt(data, 0); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// WriteManifest durably writes m under the given name.
func WriteManifest(d Disk, name string, m *Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return WriteFileAtomic(d, name, data)
}

// ReadManifest loads and structurally validates a manifest.
func ReadManifest(d Disk, name string) (*Manifest, error) {
	data, err := readFile(d, name)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("storage: manifest %s: %w", name, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("storage: manifest %s: version %d, want %d", name, m.Version, ManifestVersion)
	}
	return &m, nil
}

// decision is the master server's durable commit record for one
// array+suffix key: the highest epoch ever decided committed.
type decision struct {
	Epoch uint64 `json:"epoch"`
}

// WriteDecision durably stamps epoch as decided for key. This is the
// linearization point of the two-phase commit: once the record is on
// the master's disk the epoch is committed, and recovery rolls the
// servers forward to it.
func WriteDecision(d Disk, key string, epoch uint64) error {
	data, err := json.Marshal(decision{Epoch: epoch})
	if err != nil {
		return err
	}
	return WriteFileAtomic(d, DecisionName(key), data)
}

// ReadDecision returns the decided epoch for key, or ok=false when no
// decision record exists.
func ReadDecision(d Disk, key string) (epoch uint64, ok bool, err error) {
	data, rerr := readFile(d, DecisionName(key))
	if rerr != nil {
		return 0, false, nil // absent (or unreadable) record: no decision
	}
	var dec decision
	if err := json.Unmarshal(data, &dec); err != nil {
		return 0, false, fmt.Errorf("storage: decision %s: %w", key, err)
	}
	return dec.Epoch, true, nil
}

// --- verification -------------------------------------------------------

// VerifyData checks the named data file against a manifest: size and
// every sub-chunk CRC. It returns nil when the bytes on disk are
// exactly what the manifest promises.
func VerifyData(d Disk, name string, m *Manifest) error {
	f, err := d.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		return err
	}
	if sz < m.TotalBytes {
		return fmt.Errorf("storage: %s holds %d bytes, manifest needs %d", name, sz, m.TotalBytes)
	}
	for _, sub := range m.Subs {
		buf := make([]byte, sub.Bytes)
		if _, err := f.ReadAt(buf, sub.Offset); err != nil {
			return fmt.Errorf("storage: %s: reading extent at %d: %w", name, sub.Offset, err)
		}
		if got := CRC32C(buf); got != sub.CRC {
			return fmt.Errorf("storage: %s: extent at %d: crc %08x, manifest says %08x",
				name, sub.Offset, got, sub.CRC)
		}
	}
	return nil
}

// --- commit and rollback ------------------------------------------------

// CommitEpoch promotes a PREPARED epoch to committed: the current
// committed data+manifest (if any) move one deep to ".prev", the epoch
// temps rename onto the plain names, and older temps of the same base
// are swept. Each rename is atomic; RollForward repairs any crash
// between them. A zero-byte epoch (a server that owned no chunks) has
// a manifest but may have no data file — only the manifest promotes.
func CommitEpoch(d Disk, base string, epoch uint64) error {
	tmpData := EpochName(base, epoch)
	tmpMfst := EpochManifestName(base, epoch)
	hasTmpData := exists(d, tmpData)
	hasTmpMfst := exists(d, tmpMfst)
	if !hasTmpData && !hasTmpMfst {
		return fmt.Errorf("storage: commit %s epoch %d: nothing prepared", base, epoch)
	}
	// Retain the outgoing epoch one deep — manifest first, then data,
	// so an interrupted retention never leaves a prev manifest claiming
	// bytes that are not there yet... a stale prev pair is debris the
	// scrubber clears, not a correctness hazard. Only a fully committed
	// pair is worth retaining.
	if hasTmpData && exists(d, base) && exists(d, ManifestName(base)) {
		_ = d.Rename(ManifestName(base), ManifestName(PrevName(base)))
		_ = d.Rename(base, PrevName(base))
	}
	if hasTmpData {
		if err := d.Rename(tmpData, base); err != nil {
			return err
		}
	}
	if hasTmpMfst {
		if err := d.Rename(tmpMfst, ManifestName(base)); err != nil {
			return err
		}
	}
	sweepEpochs(d, base, epoch)
	return nil
}

// RemoveEpoch scraps a PREPARED epoch that will never commit.
func RemoveEpoch(d Disk, base string, epoch uint64) {
	_ = d.Remove(EpochName(base, epoch))
	_ = d.Remove(EpochManifestName(base, epoch))
}

// RollForward completes an interrupted commit of the decided epoch and
// returns the committed manifest. It handles every crash window:
// nothing renamed yet (temps verify against temp data), data renamed
// but not the manifest (the temp manifest verifies against the final
// data), or fully committed already.
func RollForward(d Disk, base string, epoch uint64) (*Manifest, error) {
	if m, err := ReadManifest(d, ManifestName(base)); err == nil && m.Epoch == epoch {
		return m, nil // already committed
	}
	tm, err := ReadManifest(d, EpochManifestName(base, epoch))
	if err != nil {
		return nil, fmt.Errorf("storage: roll-forward %s epoch %d: no usable manifest: %w", base, epoch, err)
	}
	probe := EpochName(base, epoch)
	if !exists(d, probe) {
		probe = base // data may already have its final name
	}
	if tm.TotalBytes > 0 {
		if verr := VerifyData(d, probe, tm); verr != nil {
			return nil, fmt.Errorf("storage: roll-forward %s epoch %d: %w", base, epoch, verr)
		}
	}
	if err := CommitEpoch(d, base, epoch); err != nil {
		return nil, err
	}
	return tm, nil
}

// sweepEpochs removes temp epoch files of base other than keep.
func sweepEpochs(d Disk, base string, keep uint64) {
	names, err := d.List()
	if err != nil {
		return
	}
	prefix := base + ".e"
	for _, name := range names {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		b, e, ok := splitEpochName(strings.TrimSuffix(name, ".mfst"))
		if ok && b == base && e != keep {
			_ = d.Remove(name)
		}
	}
}

// exists probes for a file without the Open error ceremony.
func exists(d Disk, name string) bool {
	f, err := d.Open(name)
	if err != nil {
		return false
	}
	f.Close()
	return true
}
