package storage

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// OSDisk stores files under a root directory of the host file system.
// It is the backend for functional tests and the runnable examples: the
// concatenation property of traditional-order disk schemas (paper §3)
// can be demonstrated on real files with cat.
type OSDisk struct {
	root string
}

// NewOSDisk returns a Disk rooted at dir, creating it if necessary.
func NewOSDisk(dir string) (*OSDisk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &OSDisk{root: dir}, nil
}

// Root returns the backing directory.
func (d *OSDisk) Root() string { return d.root }

// path maps a file name to a host path, flattening separators so names
// like "temperature.3" or "ckpt/density.0" stay inside the root.
func (d *OSDisk) path(name string) string {
	clean := strings.ReplaceAll(name, string(os.PathSeparator), "_")
	return filepath.Join(d.root, clean)
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Create implements Disk.
func (d *OSDisk) Create(name string) (File, error) {
	f, err := os.OpenFile(d.path(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open implements Disk.
func (d *OSDisk) Open(name string) (File, error) {
	f, err := os.OpenFile(d.path(name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Remove implements Disk.
func (d *OSDisk) Remove(name string) error {
	return os.Remove(d.path(name))
}

// Rename implements Disk via the host's atomic rename.
func (d *OSDisk) Rename(oldName, newName string) error {
	return os.Rename(d.path(oldName), d.path(newName))
}

// List implements Disk.
func (d *OSDisk) List() ([]string, error) {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// FlushCache implements Disk. Dropping the host page cache requires
// privileges we do not assume, so this is a no-op; timing on OSDisk is
// not used for the paper's figures (SimDisk is).
func (d *OSDisk) FlushCache() {}
