package storage

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"
)

// diskContract exercises the behaviour every Disk must share.
func diskContract(t *testing.T, d Disk) {
	t.Helper()

	// Create, write, read back (MemDisk/OSDisk retain data).
	f, err := d.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("WORLD"), 6); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	sz, err := f.Size()
	if err != nil || sz != 11 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "WORLD" {
		t.Fatalf("read %q", buf)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen sees the data.
	f2, err := d.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	all := make([]byte, 11)
	if _, err := f2.ReadAt(all, 0); err != nil {
		t.Fatal(err)
	}
	if string(all) != "hello WORLD" {
		t.Fatalf("reopened read %q", all)
	}
	f2.Close()

	// Create truncates.
	f3, err := d.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := f3.Size(); sz != 0 {
		t.Fatalf("Create did not truncate: size %d", sz)
	}
	f3.Close()

	// Open of a missing file fails.
	if _, err := d.Open("missing"); err == nil {
		t.Fatal("Open(missing) succeeded")
	}

	// Remove works and makes Open fail.
	if err := d.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Open("a"); err == nil {
		t.Fatal("Open after Remove succeeded")
	}
	if err := d.Remove("a"); err == nil {
		t.Fatal("double Remove succeeded")
	}
}

func TestMemDiskContract(t *testing.T) { diskContract(t, NewMemDisk()) }

func TestOSDiskContract(t *testing.T) {
	d, err := NewOSDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	diskContract(t, d)
}

func TestSimDiskContract(t *testing.T) {
	clk := &fakeClock{}
	diskContract(t, NewSimDisk(NewMemDisk(), SP2AIX(), clk))
}

func TestMemDiskSparseWriteZeroFills(t *testing.T) {
	d := NewMemDisk()
	f, _ := d.Create("s")
	if _, err := f.WriteAt([]byte{0xFF}, 100); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 101)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if buf[i] != 0 {
			t.Fatalf("hole not zero at %d", i)
		}
	}
	if buf[100] != 0xFF {
		t.Fatal("written byte lost")
	}
}

func TestMemDiskShortReadReportsError(t *testing.T) {
	d := NewMemDisk()
	f, _ := d.Create("s")
	f.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 1)
	if n != 2 || err == nil {
		t.Fatalf("short read: n=%d err=%v", n, err)
	}
}

func TestNullDiskDiscardsButTracksSize(t *testing.T) {
	d := NewNullDisk()
	f, _ := d.Create("x")
	f.WriteAt(bytes.Repeat([]byte{7}, 1024), 0)
	if sz, _ := f.Size(); sz != 1024 {
		t.Fatalf("size = %d", sz)
	}
	buf := make([]byte, 1024)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("null disk returned non-zero data")
		}
	}
}

func TestMemDiskRoundTripProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		d := NewMemDisk()
		file, _ := d.Create("p")
		var ref []byte
		off := int64(0)
		for _, c := range chunks {
			if len(c) == 0 {
				continue
			}
			file.WriteAt(c, off)
			ref = append(ref, c...)
			off += int64(len(c))
		}
		if len(ref) == 0 {
			return true
		}
		got := make([]byte, len(ref))
		if _, err := file.ReadAt(got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// fakeClock records sleeps without waiting.
type fakeClock struct{ elapsed time.Duration }

func (c *fakeClock) Now() time.Duration    { return c.elapsed }
func (c *fakeClock) Sleep(d time.Duration) { c.elapsed += d }

func almostEqual(a, b, tolFrac float64) bool {
	return math.Abs(a-b) <= tolFrac*math.Abs(b)
}

func TestAIXCalibrationMatchesTable1(t *testing.T) {
	m := SP2AIX()
	// A 1 MB sequential uncached request must land on the measured
	// peaks from Table 1.
	if got := m.ReadThroughput(1 << 20); !almostEqual(got, AIXPeakRead, 0.001) {
		t.Fatalf("1MB read throughput = %.0f, want %.0f", got, AIXPeakRead)
	}
	if got := m.WriteThroughput(1 << 20); !almostEqual(got, AIXPeakWrite, 0.001) {
		t.Fatalf("1MB write throughput = %.0f, want %.0f", got, AIXPeakWrite)
	}
}

func TestAIXThroughputDeclinesForSmallRequests(t *testing.T) {
	m := SP2AIX()
	sizes := []int{4 << 10, 64 << 10, 256 << 10, 1 << 20}
	for i := 1; i < len(sizes); i++ {
		if m.WriteThroughput(sizes[i-1]) >= m.WriteThroughput(sizes[i]) {
			t.Fatalf("write throughput not increasing in request size at %d", sizes[i])
		}
		if m.ReadThroughput(sizes[i-1]) >= m.ReadThroughput(sizes[i]) {
			t.Fatalf("read throughput not increasing in request size at %d", sizes[i])
		}
	}
	// Throughput never exceeds the media rate.
	if m.ReadThroughput(64<<20) > AIXMediaRate {
		t.Fatal("modelled throughput exceeds media rate")
	}
}

func TestSimDiskChargesSequentialWrites(t *testing.T) {
	clk := &fakeClock{}
	d := NewSimDisk(NewMemDisk(), SP2AIX(), clk)
	f, _ := d.Create("w")
	const mb = 1 << 20
	buf := make([]byte, mb)
	for i := 0; i < 8; i++ {
		f.WriteAt(buf, int64(i*mb))
	}
	thr := float64(8*mb) / clk.elapsed.Seconds()
	if !almostEqual(thr, AIXPeakWrite, 0.01) {
		t.Fatalf("sequential write throughput %.0f, want ~%.0f", thr, AIXPeakWrite)
	}
	st := d.Stats()
	if st.Writes != 8 || st.BytesWritten != 8*mb || st.Seeks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSimDiskSeekPenalty(t *testing.T) {
	m := SP2AIX()
	seq := &fakeClock{}
	d1 := NewSimDisk(NewMemDisk(), m, seq)
	f1, _ := d1.Create("w")
	buf := make([]byte, 64<<10)
	for i := 0; i < 16; i++ {
		f1.WriteAt(buf, int64(i*len(buf)))
	}

	rnd := &fakeClock{}
	d2 := NewSimDisk(NewMemDisk(), m, rnd)
	f2, _ := d2.Create("w")
	for i := 15; i >= 0; i-- { // reverse order: every request seeks
		f2.WriteAt(buf, int64(i*len(buf)))
	}
	if rnd.elapsed <= seq.elapsed {
		t.Fatalf("seeky writes (%v) not slower than sequential (%v)", rnd.elapsed, seq.elapsed)
	}
	if d2.Stats().Seeks != 15 {
		t.Fatalf("seeks = %d, want 15", d2.Stats().Seeks)
	}
}

func TestSimDiskCacheHitsAreFast(t *testing.T) {
	clk := &fakeClock{}
	d := NewSimDisk(NewMemDisk(), SP2AIX(), clk)
	f, _ := d.Create("c")
	buf := make([]byte, 1<<20)
	f.WriteAt(buf, 0) // populates cache

	before := clk.elapsed
	f.ReadAt(buf, 0) // cache hit
	hit := clk.elapsed - before

	d.FlushCache()
	before = clk.elapsed
	f.ReadAt(buf, 0) // media read
	miss := clk.elapsed - before

	if hit*10 > miss {
		t.Fatalf("cache hit (%v) not much faster than miss (%v)", hit, miss)
	}
	if d.Stats().CacheHits != 1 {
		t.Fatalf("cache hits = %d", d.Stats().CacheHits)
	}
}

func TestSimDiskFlushForcesMediaReads(t *testing.T) {
	clk := &fakeClock{}
	m := SP2AIX()
	d := NewSimDisk(NewMemDisk(), m, clk)
	f, _ := d.Create("c")
	buf := make([]byte, 1<<20)
	f.WriteAt(buf, 0)
	d.FlushCache()
	before := clk.elapsed
	f.ReadAt(buf, 0)
	got := clk.elapsed - before
	want := m.ReadCost(1<<20, false, true) // head moved? write ended at 1MB, read starts at 0 → seek
	if got != want {
		t.Fatalf("flushed read cost %v, want %v", got, want)
	}
}

func TestSimDiskCacheEviction(t *testing.T) {
	m := SP2AIX()
	m.CacheBytes = 1 << 20 // 1 MB cache
	clk := &fakeClock{}
	d := NewSimDisk(NewMemDisk(), m, clk)
	f, _ := d.Create("e")
	buf := make([]byte, 1<<20)
	f.WriteAt(buf, 0)     // fills cache
	f.WriteAt(buf, 1<<20) // evicts the first MB
	before := clk.elapsed
	f.ReadAt(buf, 0) // must be a miss
	if clk.elapsed-before < m.ReadOverhead {
		t.Fatal("expected media read after eviction")
	}
	if d.Stats().CacheHits != 0 {
		t.Fatalf("unexpected cache hit after eviction")
	}
}

func TestSimDiskCreateDropsCache(t *testing.T) {
	clk := &fakeClock{}
	d := NewSimDisk(NewMemDisk(), SP2AIX(), clk)
	f, _ := d.Create("x")
	buf := make([]byte, 64<<10)
	f.WriteAt(buf, 0)
	f.Close()
	f2, _ := d.Create("x") // truncate: stale cache must go
	f2.WriteAt(buf, 0)
	f2.Close()
	if d.Stats().CacheHits != 0 {
		t.Fatal("cache survived Create truncation")
	}
}

func TestOSDiskFilesAppearUnderRoot(t *testing.T) {
	dir := t.TempDir()
	d, err := NewOSDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := d.Create("arr.0")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("data"), 0)
	f.Close()
	f2, err := d.Open("arr.0")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	b := make([]byte, 4)
	f2.ReadAt(b, 0)
	if string(b) != "data" {
		t.Fatalf("got %q", b)
	}
}

func TestAIXThroughputPlateausAtMeasuredPeak(t *testing.T) {
	m := SP2AIX()
	// The paper reports 2.85/2.23 MB/s as *peaks*; requests larger
	// than 1 MB must not beat them.
	for _, n := range []int{1 << 20, 4 << 20, 32 << 20} {
		if got := m.ReadThroughput(n); got > AIXPeakRead*1.001 {
			t.Fatalf("read throughput %.0f at %d bytes exceeds measured peak", got, n)
		}
		if got := m.WriteThroughput(n); got > AIXPeakWrite*1.001 {
			t.Fatalf("write throughput %.0f at %d bytes exceeds measured peak", got, n)
		}
	}
	// And exactly the peak at and beyond the calibration size.
	if got := m.WriteThroughput(8 << 20); !almostEqual(got, AIXPeakWrite, 0.001) {
		t.Fatalf("8MB write throughput %.0f, want plateau %.0f", got, AIXPeakWrite)
	}
}

func TestSharedMediaSerializesTenants(t *testing.T) {
	// Two disks sharing one physical device: requests issued at the
	// same virtual instant must serialize on the arm, and alternating
	// tenants must pay cross-tenant seeks.
	m := SP2AIX()
	clkA := &fakeClock{}
	clkB := &fakeClock{}
	a := NewSimDisk(NewMemDisk(), m, clkA)
	b := NewSimDisk(NewMemDisk(), m, clkB)
	b.ShareMediaWith(a)

	fa, _ := a.Create("a")
	fb, _ := b.Create("b")
	buf := make([]byte, 1<<20)

	// Interleave: A writes, then B (B's clock still at 0, but the arm
	// is busy until A's request completes, so B waits).
	fa.WriteAt(buf, 0)
	fb.WriteAt(buf, 0)
	costA := m.WriteCost(1<<20, false)
	if clkA.elapsed != costA {
		t.Fatalf("tenant A elapsed %v, want %v", clkA.elapsed, costA)
	}
	// B paid: wait for A's slot + its own cost + a seek (different file).
	costB := m.WriteCost(1<<20, true)
	if clkB.elapsed != costA+costB {
		t.Fatalf("tenant B elapsed %v, want %v (arm wait + seek)", clkB.elapsed, costA+costB)
	}
	if b.Stats().Seeks != 1 {
		t.Fatalf("tenant B seeks = %d, want 1 (cross-tenant head movement)", b.Stats().Seeks)
	}
}

func TestBlockCacheDropSingleFile(t *testing.T) {
	c := newBlockCache(4096, 1<<20)
	c.insert("a", 0, 8192)
	c.insert("b", 0, 4096)
	if !c.contains("a", 0, 8192) || !c.contains("b", 0, 4096) {
		t.Fatal("inserted ranges not resident")
	}
	c.drop("a")
	if c.contains("a", 0, 4096) {
		t.Fatal("dropped file still resident")
	}
	if !c.contains("b", 0, 4096) {
		t.Fatal("drop removed the wrong file")
	}
	c.flush()
	if c.contains("b", 0, 4096) {
		t.Fatal("flush left residue")
	}
}

func TestFaultDiskThresholds(t *testing.T) {
	fd := &FaultDisk{Inner: NewMemDisk(), FailWritesAfter: 2, FailReadsAfter: 1}
	f, err := fd.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal("write 1 failed early")
	}
	if _, err := f.WriteAt([]byte{2}, 1); err != nil {
		t.Fatal("write 2 failed early")
	}
	if _, err := f.WriteAt([]byte{3}, 2); err == nil {
		t.Fatal("write 3 should fail")
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal("read 1 failed early")
	}
	if _, err := f.ReadAt(buf, 0); err == nil {
		t.Fatal("read 2 should fail")
	}
	fd.Heal()
	if _, err := f.WriteAt([]byte{4}, 3); err != nil {
		t.Fatal("healed write failed")
	}
}
