package storage

import (
	"reflect"
	"testing"
)

// TestCatalogOwnersReconcile: ownership records referencing a departed
// server are repaired to the survivors — persistently — while a record
// whose owners ALL departed is kept stale and reported, because blanking
// it would erase the only evidence the data needs recovery.
func TestCatalogOwnersReconcile(t *testing.T) {
	disk := NewMemDisk()
	cat, err := LoadCatalog(disk)
	if err != nil {
		t.Fatal(err)
	}
	put := func(name string, owners []int) {
		t.Helper()
		if err := cat.Put(CatalogEntry{Name: name, ElemSize: 4}); err != nil {
			t.Fatal(err)
		}
		if err := cat.SetOwners(name, owners); err != nil {
			t.Fatal(err)
		}
	}
	put("healthy", []int{0, 1})
	put("mixed", []int{0, 1, 2})
	put("orphan", []int{2})
	if err := cat.Put(CatalogEntry{Name: "unrecorded", ElemSize: 4}); err != nil {
		t.Fatal(err)
	}

	// Server slot 2 departs.
	changed, err := cat.ReconcileOwners(func(slot int) bool { return slot != 2 })
	if err != nil {
		t.Fatalf("ReconcileOwners: %v", err)
	}
	if !reflect.DeepEqual(changed, []string{"mixed", "orphan"}) {
		t.Fatalf("changed = %v, want [mixed orphan]", changed)
	}
	if e, _ := cat.Get("mixed"); !reflect.DeepEqual(e.Owners, []int{0, 1}) {
		t.Fatalf("mixed owners = %v, want [0 1]", e.Owners)
	}
	if e, _ := cat.Get("healthy"); !reflect.DeepEqual(e.Owners, []int{0, 1}) {
		t.Fatalf("healthy owners disturbed: %v", e.Owners)
	}
	// The wholly-stale record is deliberately retained.
	if e, _ := cat.Get("orphan"); !reflect.DeepEqual(e.Owners, []int{2}) {
		t.Fatalf("orphan owners = %v, want the stale [2] kept", e.Owners)
	}
	if e, _ := cat.Get("unrecorded"); len(e.Owners) != 0 {
		t.Fatalf("unrecorded entry grew owners: %v", e.Owners)
	}

	// The repair persisted: a fresh load sees the reconciled records.
	cat2, err := LoadCatalog(disk)
	if err != nil {
		t.Fatal(err)
	}
	if e, _ := cat2.Get("mixed"); !reflect.DeepEqual(e.Owners, []int{0, 1}) {
		t.Fatalf("reloaded mixed owners = %v", e.Owners)
	}

	// Idempotent: a second sweep changes nothing.
	changed, err = cat2.ReconcileOwners(func(slot int) bool { return slot != 2 })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(changed, []string{"orphan"}) {
		t.Fatalf("second sweep changed = %v, want only the stale [orphan] re-reported", changed)
	}
}

// TestScrubSkipsVacantSlots: an elastic pool hands Scrub a disk slice
// with nil entries (vacant slots, remote members' disks); the scrub
// must skip them rather than crash, and still judge the real disks.
func TestScrubSkipsVacantSlots(t *testing.T) {
	d0 := NewMemDisk()
	d2 := NewMemDisk()
	// A committed file on the master disk: data + matching manifest +
	// decision record, exactly what a clean commit leaves behind.
	base, data := "A.0", []byte{1, 2, 3, 4}
	if err := WriteFileAtomic(d0, base, data); err != nil {
		t.Fatal(err)
	}
	m := &Manifest{
		Version: ManifestVersion, Array: "A", Server: 0, Epoch: 1,
		SchemaSum: 0xfeed, TotalBytes: int64(len(data)),
		Chunks: []ManifestChunk{{ChunkIdx: 0, Offset: 0, Bytes: int64(len(data))}},
		Subs:   []ManifestSub{{Offset: 0, Bytes: int64(len(data)), CRC: CRC32C(data)}},
	}
	if err := WriteManifest(d0, ManifestName(base), m); err != nil {
		t.Fatal(err)
	}
	if err := WriteDecision(d0, "A", 1); err != nil {
		t.Fatal(err)
	}

	rep, err := Scrub([]Disk{d0, nil, d2, nil}, true)
	if err != nil {
		t.Fatalf("Scrub with vacant slots: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("scrub unhealthy: %+v", rep.Issues)
	}
	if rep.Manifests == 0 {
		t.Fatalf("scrub skipped the real disks too: %+v", rep)
	}
}
