package storage

import (
	"errors"
	"sync"
)

// ErrInjected is the error FaultDisk injects.
var ErrInjected = errors.New("storage: injected fault")

// FaultDisk wraps a Disk and injects failures for testing error paths:
// after FailWritesAfter successful writes every further write fails,
// and likewise for reads. Zero thresholds disable that class of fault.
// Opens fail once FailOpens is set. FaultDisk is safe for concurrent
// use to the extent the wrapped disk is.
type FaultDisk struct {
	Inner Disk
	// FailWritesAfter > 0 fails every write after that many succeed.
	FailWritesAfter int64
	// FailReadsAfter > 0 fails every read after that many succeed.
	FailReadsAfter int64
	// FailOpens makes Open/Create fail outright.
	FailOpens bool

	mu       sync.Mutex
	writes   int64
	reads    int64
	tornSync bool
	torn     int64
}

// Heal atomically disables all injected faults.
func (d *FaultDisk) Heal() {
	d.mu.Lock()
	d.FailWritesAfter = 0
	d.FailReadsAfter = 0
	d.FailOpens = false
	d.tornSync = false
	d.mu.Unlock()
}

// ArmTornSync makes the next Sync on any file of this disk lie like a
// powered-off drive: it reports success but the tail half of that
// file's most recent WriteAt never reaches the media (it is overwritten
// with zeros). One Sync consumes the arming. This simulates a real
// power cut for crash-consistency tests — data silently lost after a
// successful flush — rather than a clean error.
func (d *FaultDisk) ArmTornSync() {
	d.mu.Lock()
	d.tornSync = true
	d.mu.Unlock()
}

// TornSyncs reports how many torn syncs this disk has injected.
func (d *FaultDisk) TornSyncs() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.torn
}

// Create implements Disk.
func (d *FaultDisk) Create(name string) (File, error) {
	if d.failOpens() {
		return nil, ErrInjected
	}
	f, err := d.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{disk: d, inner: f}, nil
}

func (d *FaultDisk) failOpens() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.FailOpens
}

// Open implements Disk.
func (d *FaultDisk) Open(name string) (File, error) {
	if d.failOpens() {
		return nil, ErrInjected
	}
	f, err := d.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{disk: d, inner: f}, nil
}

// Remove implements Disk.
func (d *FaultDisk) Remove(name string) error { return d.Inner.Remove(name) }

// Rename implements Disk.
func (d *FaultDisk) Rename(oldName, newName string) error { return d.Inner.Rename(oldName, newName) }

// List implements Disk.
func (d *FaultDisk) List() ([]string, error) { return d.Inner.List() }

// FlushCache implements Disk.
func (d *FaultDisk) FlushCache() { d.Inner.FlushCache() }

type faultFile struct {
	disk  *FaultDisk
	inner File

	mu      sync.Mutex
	lastOff int64
	lastLen int
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	d := f.disk
	d.mu.Lock()
	d.writes++
	fail := d.FailWritesAfter > 0 && d.writes > d.FailWritesAfter
	d.mu.Unlock()
	if fail {
		return 0, ErrInjected
	}
	f.mu.Lock()
	f.lastOff, f.lastLen = off, len(p)
	f.mu.Unlock()
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	d := f.disk
	d.mu.Lock()
	d.reads++
	fail := d.FailReadsAfter > 0 && d.reads > d.FailReadsAfter
	d.mu.Unlock()
	if fail {
		return 0, ErrInjected
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) Sync() error {
	d := f.disk
	d.mu.Lock()
	tear := d.tornSync
	if tear {
		d.tornSync = false
		d.torn++
	}
	d.mu.Unlock()
	if tear {
		f.mu.Lock()
		off, n := f.lastOff, f.lastLen
		f.mu.Unlock()
		if n > 0 {
			// The tail half of the last write never hit the media.
			lost := n - n/2
			if _, err := f.inner.WriteAt(make([]byte, lost), off+int64(n/2)); err != nil {
				return nil // best effort: the lie stands even if the tear fails
			}
		}
	}
	return f.inner.Sync()
}
func (f *faultFile) Size() (int64, error) { return f.inner.Size() }
func (f *faultFile) Close() error         { return f.inner.Close() }
