package storage

import (
	"errors"
	"sync"
)

// ErrInjected is the error FaultDisk injects.
var ErrInjected = errors.New("storage: injected fault")

// FaultDisk wraps a Disk and injects failures for testing error paths:
// after FailWritesAfter successful writes every further write fails,
// and likewise for reads. Zero thresholds disable that class of fault.
// Opens fail once FailOpens is set. FaultDisk is safe for concurrent
// use to the extent the wrapped disk is.
type FaultDisk struct {
	Inner Disk
	// FailWritesAfter > 0 fails every write after that many succeed.
	FailWritesAfter int64
	// FailReadsAfter > 0 fails every read after that many succeed.
	FailReadsAfter int64
	// FailOpens makes Open/Create fail outright.
	FailOpens bool

	mu     sync.Mutex
	writes int64
	reads  int64
}

// Heal atomically disables all injected faults.
func (d *FaultDisk) Heal() {
	d.mu.Lock()
	d.FailWritesAfter = 0
	d.FailReadsAfter = 0
	d.FailOpens = false
	d.mu.Unlock()
}

// Create implements Disk.
func (d *FaultDisk) Create(name string) (File, error) {
	if d.failOpens() {
		return nil, ErrInjected
	}
	f, err := d.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{disk: d, inner: f}, nil
}

func (d *FaultDisk) failOpens() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.FailOpens
}

// Open implements Disk.
func (d *FaultDisk) Open(name string) (File, error) {
	if d.failOpens() {
		return nil, ErrInjected
	}
	f, err := d.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{disk: d, inner: f}, nil
}

// Remove implements Disk.
func (d *FaultDisk) Remove(name string) error { return d.Inner.Remove(name) }

// FlushCache implements Disk.
func (d *FaultDisk) FlushCache() { d.Inner.FlushCache() }

type faultFile struct {
	disk  *FaultDisk
	inner File
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	d := f.disk
	d.mu.Lock()
	d.writes++
	fail := d.FailWritesAfter > 0 && d.writes > d.FailWritesAfter
	d.mu.Unlock()
	if fail {
		return 0, ErrInjected
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	d := f.disk
	d.mu.Lock()
	d.reads++
	fail := d.FailReadsAfter > 0 && d.reads > d.FailReadsAfter
	d.mu.Unlock()
	if fail {
		return 0, ErrInjected
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) Sync() error          { return f.inner.Sync() }
func (f *faultFile) Size() (int64, error) { return f.inner.Size() }
func (f *faultFile) Close() error         { return f.inner.Close() }
