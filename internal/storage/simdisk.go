package storage

import (
	"time"

	"panda/internal/clock"
	"panda/internal/vtime"
)

// SimDisk wraps an inner Disk (normally a MemDisk) and charges the
// calling node time per request according to an AIXModel. The wrapped
// disk supplies data correctness; SimDisk supplies timing. It belongs to
// exactly one I/O node, whose clock it advances synchronously — matching
// Panda servers, which issue blocking file system calls.
type SimDisk struct {
	inner Disk
	model AIXModel
	clk   clock.Clock
	cache *blockCache

	// media is the physical device: the arm's availability and head
	// position. Normally private to this SimDisk; ShareMediaWith
	// makes two SimDisks contend for one device, modelling two
	// applications whose I/O nodes share a physical node (the
	// paper's closing question about i/o node sharing).
	media *media

	stats *DiskStats
}

// media is one physical disk: a serially reusable arm plus its head
// position for seek accounting.
type media struct {
	arm      vtime.Port
	lastFile string
	lastOff  int64
	touched  bool
}

// DiskStats counts the traffic a SimDisk served.
type DiskStats struct {
	Reads, Writes, Seeks, CacheHits int64
	BytesRead, BytesWritten         int64
	Busy                            time.Duration
}

// NewSimDisk wraps inner with the given cost model, advancing clk on
// every request.
func NewSimDisk(inner Disk, model AIXModel, clk clock.Clock) *SimDisk {
	var cache *blockCache
	if model.CacheBytes > 0 {
		cache = newBlockCache(model.BlockSize, model.CacheBytes)
	}
	return &SimDisk{inner: inner, model: model, clk: clk, cache: cache, media: &media{}, stats: &DiskStats{}}
}

// Rebind returns a view of the same simulated disk driven by another
// clock — for a pipeline stage that runs as its own simulated process
// on the same I/O node. The view shares the device (arm, head, cache),
// the stored data, and the statistics; only the clock that gets charged
// differs. Requests from the original and the view still serialize on
// the one arm, so the sequential-access guarantee is unaffected.
func (d *SimDisk) Rebind(clk clock.Clock) Disk {
	cp := *d
	cp.clk = clk
	return &cp
}

// Rebinder is implemented by disks whose time accounting is bound to a
// specific clock. RebindClock uses it to retarget a disk at a pipeline
// stage's own clock; disks that measure real time need no rebinding.
type Rebinder interface {
	Rebind(clk clock.Clock) Disk
}

// RebindClock retargets d's time accounting at clk when d supports it,
// and returns d unchanged otherwise.
func RebindClock(d Disk, clk clock.Clock) Disk {
	if r, ok := d.(Rebinder); ok {
		return r.Rebind(clk)
	}
	return d
}

// ShareMediaWith makes d use the same physical device as o: their
// requests serialize on one arm and disturb each other's head
// position. Both disks must be driven by clocks of the same
// simulation.
func (d *SimDisk) ShareMediaWith(o *SimDisk) { d.media = o.media }

// Stats returns the traffic counters so far, aggregated across every
// Rebind view of this disk.
func (d *SimDisk) Stats() DiskStats { return *d.stats }

// seekCheck updates the device head position and reports whether this
// request pays a seek.
func (d *SimDisk) seekCheck(file string, off, n int64) bool {
	m := d.media
	seek := m.touched && (file != m.lastFile || off != m.lastOff)
	m.lastFile, m.lastOff, m.touched = file, off+n, true
	if seek {
		d.stats.Seeks++
	}
	return seek
}

// charge books the request on the device arm — waiting out any other
// tenant's in-flight request — and advances this node's clock to the
// completion time.
func (d *SimDisk) charge(cost time.Duration) {
	now := d.clk.Now()
	done := d.media.arm.Reserve(now, cost)
	d.stats.Busy += cost
	d.clk.Sleep(done - now)
}

// Create implements Disk.
func (d *SimDisk) Create(name string) (File, error) {
	f, err := d.inner.Create(name)
	if err != nil {
		return nil, err
	}
	d.cache.drop(name)
	return &simFile{disk: d, name: name, inner: f}, nil
}

// Open implements Disk.
func (d *SimDisk) Open(name string) (File, error) {
	f, err := d.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &simFile{disk: d, name: name, inner: f}, nil
}

// Remove implements Disk.
func (d *SimDisk) Remove(name string) error {
	d.cache.drop(name)
	return d.inner.Remove(name)
}

// Rename implements Disk. A rename is a metadata operation — the AIX
// model charges data movement only — so it costs no simulated time.
// Cached residency travels under the old name; dropping both names
// keeps the model conservative (the next reads hit the media).
func (d *SimDisk) Rename(oldName, newName string) error {
	d.cache.drop(oldName)
	d.cache.drop(newName)
	return d.inner.Rename(oldName, newName)
}

// List implements Disk; listing a directory charges no simulated time.
func (d *SimDisk) List() ([]string, error) { return d.inner.List() }

// FlushCache implements Disk: drops the modelled buffer cache, as the
// paper does before each read experiment.
func (d *SimDisk) FlushCache() {
	d.cache.flush()
	d.inner.FlushCache()
}

type simFile struct {
	disk  *SimDisk
	name  string
	inner File
}

func (f *simFile) ReadAt(p []byte, off int64) (int, error) {
	d := f.disk
	n := int64(len(p))
	cached := d.cache.contains(f.name, off, n)
	seek := false
	if cached {
		d.stats.CacheHits++
	} else {
		seek = d.seekCheck(f.name, off, n)
	}
	d.charge(d.model.ReadCost(len(p), cached, seek))
	d.cache.insert(f.name, off, n)
	d.stats.Reads++
	d.stats.BytesRead += n
	return f.inner.ReadAt(p, off)
}

func (f *simFile) WriteAt(p []byte, off int64) (int, error) {
	d := f.disk
	n := int64(len(p))
	seek := d.seekCheck(f.name, off, n)
	d.charge(d.model.WriteCost(len(p), seek))
	d.cache.insert(f.name, off, n)
	d.stats.Writes++
	d.stats.BytesWritten += n
	return f.inner.WriteAt(p, off)
}

// Sync implements File. The model charges writes synchronously (the
// measured AIX write peak the overheads are calibrated to already
// reflects fsync-per-operation, per the paper's methodology), so Sync
// itself is free.
func (f *simFile) Sync() error { return f.inner.Sync() }

func (f *simFile) Size() (int64, error) { return f.inner.Size() }

func (f *simFile) Close() error { return f.inner.Close() }
