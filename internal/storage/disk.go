// Package storage provides the file systems Panda servers store array
// chunks in. The paper ran on one AIX file system per I/O node of the
// NAS IBM SP2; this package supplies:
//
//   - OSDisk: real files under a directory, for functional tests and
//     runnable examples;
//   - MemDisk: an in-memory file store (optionally discarding data, for
//     large-scale performance runs where only sizes matter);
//   - SimDisk: a wrapper charging virtual time per request according to
//     an AIX cost model calibrated from the paper's Table 1, including
//     request-size-dependent throughput, seek penalties, and a buffer
//     cache with explicit flush (the paper flushes the cache before
//     every read experiment).
//
// The "infinitely fast disk" experiments (paper Figures 5, 6, 9 — file
// system calls commented out) use a bare discarding MemDisk, which costs
// nothing.
package storage

import "io"

// Disk is one I/O node's file system.
type Disk interface {
	// Create opens the named file for read/write, truncating it if it
	// exists.
	Create(name string) (File, error)
	// Open opens an existing named file for read/write.
	Open(name string) (File, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically replaces newName with oldName's file (POSIX
	// rename semantics: the destination is overwritten if present).
	// The epoch-commit protocol relies on this being the one atomic
	// transition from "old epoch" to "new epoch".
	Rename(oldName, newName string) error
	// List returns the names of every file on the disk, sorted; the
	// scrubber and epoch garbage collection walk it.
	List() ([]string, error)
	// FlushCache drops whatever cache the implementation keeps, so the
	// next reads hit the media. Mirrors the paper's methodology of
	// writing and deleting a large temporary file before reads.
	FlushCache()
}

// File is an open file supporting positioned I/O.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Sync flushes buffered writes to the media (fsync).
	Sync() error
	// Size reports the current file length in bytes.
	Size() (int64, error)
	Close() error
}
