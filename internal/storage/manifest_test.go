package storage

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// mkManifest builds a manifest over data with one sub-chunk CRC per
// subBytes extent, as the server engine does while retiring sub-chunks.
func mkManifest(server int, epoch uint64, data []byte, subBytes int) *Manifest {
	m := &Manifest{
		Version: ManifestVersion, Array: "state", Suffix: ".ckpt",
		Server: server, Epoch: epoch, SchemaSum: 0xfeed,
		TotalBytes: int64(len(data)),
		Chunks:     []ManifestChunk{{ChunkIdx: server, Offset: 0, Bytes: int64(len(data))}},
	}
	for off := 0; off < len(data); off += subBytes {
		end := off + subBytes
		if end > len(data) {
			end = len(data)
		}
		m.Subs = append(m.Subs, ManifestSub{Offset: int64(off), Bytes: int64(end - off), CRC: CRC32C(data[off:end])})
	}
	return m
}

// writeEpochFiles stages one PREPARED epoch: temp data, sync, temp manifest.
func writeEpochFiles(t *testing.T, d Disk, base string, epoch uint64, data []byte) *Manifest {
	t.Helper()
	f, err := d.Create(EpochName(base, epoch))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	m := mkManifest(0, epoch, data, 4)
	if err := WriteManifest(d, EpochManifestName(base, epoch), m); err != nil {
		t.Fatal(err)
	}
	return m
}

func readAll(t *testing.T, d Disk, name string) []byte {
	t.Helper()
	data, err := readFile(d, name)
	if err != nil {
		t.Fatalf("reading %s: %v", name, err)
	}
	return data
}

func TestManifestRoundTrip(t *testing.T) {
	d := NewMemDisk()
	m := mkManifest(2, 7, []byte("abcdefghij"), 4)
	m.Degraded = true
	if err := WriteManifest(d, "state.ckpt.2.mfst", m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(d, "state.ckpt.2.mfst")
	if err != nil {
		t.Fatal(err)
	}
	if got.Array != "state" || got.Suffix != ".ckpt" || got.Server != 2 ||
		got.Epoch != 7 || got.SchemaSum != 0xfeed || !got.Degraded ||
		got.TotalBytes != 10 || len(got.Chunks) != 1 || len(got.Subs) != 3 {
		t.Fatalf("round trip mangled manifest: %+v", got)
	}
	// A future-versioned manifest must be rejected, not misread.
	m.Version = ManifestVersion + 1
	if err := WriteManifest(d, "v.mfst", m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(d, "v.mfst"); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestEpochNaming(t *testing.T) {
	base := "state.ckpt.3"
	name := EpochName(base, 12)
	b, e, ok := splitEpochName(name)
	if !ok || b != base || e != 12 {
		t.Fatalf("splitEpochName(%q) = %q, %d, %v", name, b, e, ok)
	}
	if _, _, ok := splitEpochName(base); ok {
		t.Fatalf("plain name %q parsed as epoch", base)
	}
	if _, _, ok := splitEpochName("x.ea1"); ok {
		t.Fatal("non-numeric epoch accepted")
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	d := NewMemDisk()
	if err := WriteFileAtomic(d, "f", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(d, "f", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, d, "f"); string(got) != "new" {
		t.Fatalf("got %q", got)
	}
	names, _ := d.List()
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			t.Fatalf("scratch file %s left behind", n)
		}
	}
}

func TestDecisionRoundTrip(t *testing.T) {
	d := NewMemDisk()
	if _, ok, err := ReadDecision(d, "state.ckpt"); ok || err != nil {
		t.Fatalf("absent decision: ok=%v err=%v", ok, err)
	}
	if err := WriteDecision(d, "state.ckpt", 5); err != nil {
		t.Fatal(err)
	}
	e, ok, err := ReadDecision(d, "state.ckpt")
	if err != nil || !ok || e != 5 {
		t.Fatalf("got %d, %v, %v", e, ok, err)
	}
}

func TestVerifyDataDetectsCorruption(t *testing.T) {
	d := NewMemDisk()
	data := []byte("abcdefghijkl")
	base := "state.ckpt.0"
	m := writeEpochFiles(t, d, base, 1, data)
	name := EpochName(base, 1)
	if err := VerifyData(d, name, m); err != nil {
		t.Fatalf("clean data failed verify: %v", err)
	}
	// Flip one byte.
	f, _ := d.Open(name)
	f.WriteAt([]byte{'X'}, 6)
	f.Close()
	if err := VerifyData(d, name, m); err == nil {
		t.Fatal("bit flip not detected")
	}
	// Short file.
	short := mkManifest(0, 1, append(data, "more"...), 4)
	if err := VerifyData(d, name, short); err == nil || !strings.Contains(err.Error(), "holds") {
		t.Fatalf("short file not detected: %v", err)
	}
}

func TestCommitEpochPromotesAndRetainsPrev(t *testing.T) {
	d := NewMemDisk()
	base := "state.ckpt.0"
	writeEpochFiles(t, d, base, 1, []byte("epoch-one!!!"))
	if err := CommitEpoch(d, base, 1); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, d, base); string(got) != "epoch-one!!!" {
		t.Fatalf("committed data = %q", got)
	}
	m, err := ReadManifest(d, ManifestName(base))
	if err != nil || m.Epoch != 1 {
		t.Fatalf("committed manifest: %+v, %v", m, err)
	}

	writeEpochFiles(t, d, base, 2, []byte("epoch-two!!!"))
	if err := CommitEpoch(d, base, 2); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, d, base); string(got) != "epoch-two!!!" {
		t.Fatalf("committed data = %q", got)
	}
	if got := readAll(t, d, PrevName(base)); string(got) != "epoch-one!!!" {
		t.Fatalf("prev data = %q", got)
	}
	pm, err := ReadManifest(d, ManifestName(PrevName(base)))
	if err != nil || pm.Epoch != 1 {
		t.Fatalf("prev manifest: %+v, %v", pm, err)
	}
	names, _ := d.List()
	for _, n := range names {
		if isEpochData(n) || isEpochData(strings.TrimSuffix(n, ".mfst")) {
			t.Fatalf("temp epoch file %s survived commit", n)
		}
	}
}

func TestCommitEpochSweepsStaleTemps(t *testing.T) {
	d := NewMemDisk()
	base := "state.ckpt.0"
	writeEpochFiles(t, d, base, 1, []byte("stale epoch "))
	writeEpochFiles(t, d, base, 2, []byte("fresh epoch "))
	if err := CommitEpoch(d, base, 2); err != nil {
		t.Fatal(err)
	}
	if exists(d, EpochName(base, 1)) || exists(d, EpochManifestName(base, 1)) {
		t.Fatal("stale epoch 1 temps not swept")
	}
}

func TestRollForwardEveryCrashWindow(t *testing.T) {
	data := []byte("the decided epoch bytes!")
	for _, window := range []string{"nothing-renamed", "data-renamed", "fully-committed"} {
		t.Run(window, func(t *testing.T) {
			d := NewMemDisk()
			base := "state.ckpt.0"
			writeEpochFiles(t, d, base, 1, []byte("previously committed writ"))
			if err := CommitEpoch(d, base, 1); err != nil {
				t.Fatal(err)
			}
			writeEpochFiles(t, d, base, 2, data)
			switch window {
			case "data-renamed":
				// Crash mid-commit: prev retained and data promoted,
				// but the manifest rename never happened.
				_ = d.Rename(ManifestName(base), ManifestName(PrevName(base)))
				_ = d.Rename(base, PrevName(base))
				if err := d.Rename(EpochName(base, 2), base); err != nil {
					t.Fatal(err)
				}
			case "fully-committed":
				if err := CommitEpoch(d, base, 2); err != nil {
					t.Fatal(err)
				}
			}
			m, err := RollForward(d, base, 2)
			if err != nil {
				t.Fatalf("%s: %v", window, err)
			}
			if m.Epoch != 2 {
				t.Fatalf("%s: rolled to epoch %d", window, m.Epoch)
			}
			if got := readAll(t, d, base); !bytes.Equal(got, data) {
				t.Fatalf("%s: data = %q", window, got)
			}
			fm, err := ReadManifest(d, ManifestName(base))
			if err != nil || fm.Epoch != 2 {
				t.Fatalf("%s: final manifest %+v, %v", window, fm, err)
			}
		})
	}
}

func TestRollForwardRefusesCorruptEpoch(t *testing.T) {
	d := NewMemDisk()
	base := "state.ckpt.0"
	writeEpochFiles(t, d, base, 1, []byte("good bytes here!"))
	f, _ := d.Open(EpochName(base, 1))
	f.WriteAt([]byte("BAD"), 4)
	f.Close()
	if _, err := RollForward(d, base, 1); err == nil {
		t.Fatal("corrupt epoch rolled forward")
	}
}

func TestTornSyncLosesTailOfLastWrite(t *testing.T) {
	fd := &FaultDisk{Inner: NewMemDisk()}
	fd.ArmTornSync()
	f, err := fd.Create("victim")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 64)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("torn sync must lie, got %v", err)
	}
	f.Close()
	if fd.TornSyncs() != 1 {
		t.Fatalf("TornSyncs = %d", fd.TornSyncs())
	}
	got := readAll(t, fd.Inner, "victim")
	if !bytes.Equal(got[:32], payload[:32]) {
		t.Fatal("head of write damaged")
	}
	if !bytes.Equal(got[32:], make([]byte, 32)) {
		t.Fatal("tail of write survived a torn sync")
	}
	// The arming is one-shot.
	f2, _ := fd.Create("second")
	f2.WriteAt(payload, 0)
	f2.Sync()
	f2.Close()
	if got := readAll(t, fd.Inner, "second"); !bytes.Equal(got, payload) {
		t.Fatal("second sync also torn")
	}
}

func TestScrubCleanDirectoryIsQuiet(t *testing.T) {
	d0, d1 := NewMemDisk(), NewMemDisk()
	for i, d := range []Disk{d0, d1} {
		base := fmt.Sprintf("state.ckpt.%d", i)
		writeEpochFiles(t, d, base, 1, []byte("committed payload"))
		if err := CommitEpoch(d, base, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteDecision(d0, "state.ckpt", 1); err != nil {
		t.Fatal(err)
	}
	rep, err := Scrub([]Disk{d0, d1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || len(rep.Issues) != 0 || rep.Manifests != 2 {
		t.Fatalf("clean dir scrub: %+v", rep)
	}
}

func TestScrubSweepsUncommittedDebris(t *testing.T) {
	d := NewMemDisk()
	base := "state.ckpt.0"
	writeEpochFiles(t, d, base, 1, []byte("committed payload"))
	if err := CommitEpoch(d, base, 1); err != nil {
		t.Fatal(err)
	}
	if err := WriteDecision(d, "state.ckpt", 1); err != nil {
		t.Fatal(err)
	}
	// Crash debris: a never-decided epoch 2, a torn prepare (data, no
	// manifest), and an atomic-write scratch file.
	writeEpochFiles(t, d, base, 2, []byte("never committed!!"))
	f, _ := d.Create("other.ckpt.0.e9")
	f.WriteAt([]byte("torn"), 0)
	f.Close()
	f, _ = d.Create("junk.mfst.tmp")
	f.Close()

	rep, err := Scrub([]Disk{d}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("-check must pass on crash debris: %+v", rep.Issues)
	}
	if len(rep.Issues) != 3 {
		t.Fatalf("want 3 warnings, got %+v", rep.Issues)
	}

	rep, err = Scrub([]Disk{d}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 3 {
		t.Fatalf("repair removed %d, want 3: %+v", rep.Removed, rep.Issues)
	}
	rep, _ = Scrub([]Disk{d}, false)
	if len(rep.Issues) != 0 {
		t.Fatalf("debris survived repair: %+v", rep.Issues)
	}
	if got := readAll(t, d, base); string(got) != "committed payload" {
		t.Fatalf("repair damaged committed data: %q", got)
	}
}

func TestScrubRollsForwardInterruptedCommit(t *testing.T) {
	d := NewMemDisk()
	base := "state.ckpt.0"
	writeEpochFiles(t, d, base, 1, []byte("the decided bytes"))
	// Decision stamped, crash before any rename: temps + decision only.
	if err := WriteDecision(d, "state.ckpt", 1); err != nil {
		t.Fatal(err)
	}
	rep, err := Scrub([]Disk{d}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("-check must pass on an interrupted commit: %+v", rep.Issues)
	}
	rep, err = Scrub([]Disk{d}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RolledForward != 1 {
		t.Fatalf("RolledForward = %d: %+v", rep.RolledForward, rep.Issues)
	}
	if got := readAll(t, d, base); string(got) != "the decided bytes" {
		t.Fatalf("rolled-forward data = %q", got)
	}
	m, err := ReadManifest(d, ManifestName(base))
	if err != nil || m.Epoch != 1 {
		t.Fatalf("manifest after roll-forward: %+v, %v", m, err)
	}
}

func TestScrubRollsBackTornCommittedEpoch(t *testing.T) {
	// Two servers; epoch 1 then epoch 2 commit on both; then server 0's
	// media turns out to have lied about epoch 2 (torn sync discovered
	// at scrub time). Repair must fall the whole key back to epoch 1.
	d0, d1 := NewMemDisk(), NewMemDisk()
	disks := []Disk{d0, d1}
	for i, d := range disks {
		base := fmt.Sprintf("state.ckpt.%d", i)
		writeEpochFiles(t, d, base, 1, []byte("epoch one server "+fmt.Sprint(i)))
		if err := CommitEpoch(d, base, 1); err != nil {
			t.Fatal(err)
		}
		writeEpochFiles(t, d, base, 2, []byte("epoch TWO server "+fmt.Sprint(i)))
		if err := CommitEpoch(d, base, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteDecision(d0, "state.ckpt", 2); err != nil {
		t.Fatal(err)
	}
	// Tear server 0's committed epoch-2 bytes behind the manifest's back.
	f, _ := d0.Open("state.ckpt.0")
	f.WriteAt(make([]byte, 8), 9)
	f.Close()

	rep, err := Scrub(disks, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("-check must fail on a torn committed epoch")
	}

	rep, err = Scrub(disks, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RolledBack != 1 {
		t.Fatalf("RolledBack = %d: %+v", rep.RolledBack, rep.Issues)
	}
	e, ok, err := ReadDecision(d0, "state.ckpt")
	if err != nil || !ok || e != 1 {
		t.Fatalf("decision after rollback: %d, %v, %v", e, ok, err)
	}
	// Server 0 was physically rolled back to epoch 1 under the plain name.
	if got := readAll(t, d0, "state.ckpt.0"); string(got) != "epoch one server 0" {
		t.Fatalf("server 0 data after rollback: %q", got)
	}
	m, err := ReadManifest(d0, "state.ckpt.0.mfst")
	if err != nil || m.Epoch != 1 {
		t.Fatalf("server 0 manifest after rollback: %+v, %v", m, err)
	}
	// Server 1 keeps its (healthy) epoch 2 final; its epoch 1 lives in
	// .prev, which is what the decided epoch now resolves to.
	pm, err := ReadManifest(d1, "state.ckpt.1.prev.mfst")
	if err != nil || pm.Epoch != 1 {
		t.Fatalf("server 1 prev manifest: %+v, %v", pm, err)
	}
	rep, err = Scrub(disks, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scrub after rollback repair: %+v", rep.Issues)
	}
}

func TestScrubUnrecoverableWithoutPrior(t *testing.T) {
	d := NewMemDisk()
	base := "state.ckpt.0"
	writeEpochFiles(t, d, base, 1, []byte("the only epoch"))
	if err := CommitEpoch(d, base, 1); err != nil {
		t.Fatal(err)
	}
	if err := WriteDecision(d, "state.ckpt", 1); err != nil {
		t.Fatal(err)
	}
	f, _ := d.Open(base)
	f.WriteAt([]byte("XX"), 4)
	f.Close()
	rep, err := Scrub([]Disk{d}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || rep.RolledBack != 0 {
		t.Fatalf("first-epoch corruption must be unrecoverable: %+v", rep)
	}
}
