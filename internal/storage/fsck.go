package storage

import (
	"fmt"
	"strings"
)

// Scrub walks a Panda directory set — one Disk per I/O node — and
// checks every epoch artifact for crash consistency: interrupted
// commits are rolled forward, uncommitted leftovers and atomic-write
// scratch are swept, and committed manifests are verified against the
// bytes on disk. A crash at any point of a collective write leaves only
// warn-level debris; error-level issues mean bytes the protocol
// promised durable cannot be produced (e.g. media that lied about a
// Sync), in which case repair falls the affected key back to the
// newest epoch every server can still serve.

// Issue severities.
const (
	SevWarn  = "warn"  // debris a crash legitimately leaves; -check passes
	SevError = "error" // a committed promise that cannot be kept
)

// ScrubIssue is one finding on one disk.
type ScrubIssue struct {
	Disk     int    // disk index, -1 for cross-disk findings
	Name     string // file (or key) the finding is about
	Severity string
	Problem  string
	Repaired bool // set when Scrub ran with repair and fixed it
}

// ScrubReport is what Scrub found and did.
type ScrubReport struct {
	Issues []ScrubIssue
	// Manifests counts committed manifests that verified clean;
	// Legacy counts data files with no manifest at all.
	Manifests, Legacy int
	// RolledForward, Removed and RolledBack count repair actions.
	RolledForward, Removed, RolledBack int
}

// OK reports whether the directory set is healthy: warn-level debris
// is tolerated, error-level issues are not.
func (r *ScrubReport) OK() bool {
	for _, is := range r.Issues {
		if is.Severity == SevError && !is.Repaired {
			return false
		}
	}
	return true
}

func (r *ScrubReport) add(disk int, name, sev, problem string, repaired bool) {
	r.Issues = append(r.Issues, ScrubIssue{Disk: disk, Name: name, Severity: sev, Problem: problem, Repaired: repaired})
}

// manifestState tracks one manifest-bearing slot (final or prev) of one
// key on one disk during a scrub.
type manifestState struct {
	disk  int
	base  string
	epoch uint64
	valid bool
}

// Scrub checks (and with repair, fixes) the epoch state across disks.
func Scrub(disks []Disk, repair bool) (*ScrubReport, error) {
	rep := &ScrubReport{}

	// Pass 0: collect commit decisions (normally only the master
	// server's disk has them, but any disk is honored).
	decided := map[string]uint64{}
	decDisk := map[string]int{}
	listings := make([][]string, len(disks))
	for i, d := range disks {
		if d == nil {
			continue // vacant pool slot (or a remote member's disk): nothing local to scrub
		}
		names, err := d.List()
		if err != nil {
			return nil, fmt.Errorf("storage: scrub: listing disk %d: %w", i, err)
		}
		listings[i] = names
		for _, n := range names {
			if !strings.HasSuffix(n, ".decision") {
				continue
			}
			key := strings.TrimSuffix(n, ".decision")
			e, ok, err := ReadDecision(d, key)
			if err != nil {
				rep.add(i, n, SevError, fmt.Sprintf("unreadable decision record: %v", err), false)
				continue
			}
			if ok && e > decided[key] {
				decided[key] = e
				decDisk[key] = i
			}
		}
	}

	finals := map[string][]manifestState{} // key → final-slot states
	prevs := map[string][]manifestState{}  // key → prev-slot states

	// Pass 1: per-disk artifact walk.
	for i, d := range disks {
		if d == nil {
			continue
		}
		have := make(map[string]bool, len(listings[i]))
		for _, n := range listings[i] {
			have[n] = true
		}
		for _, n := range listings[i] {
			switch {
			case strings.HasSuffix(n, ".decision"):
				// handled in pass 0

			case strings.HasSuffix(n, ".tmp"):
				repaired := repair && d.Remove(n) == nil
				if repaired {
					rep.Removed++
				}
				rep.add(i, n, SevWarn, "interrupted atomic write", repaired)

			case strings.HasSuffix(n, ".mfst"):
				inner := strings.TrimSuffix(n, ".mfst")
				if base, epoch, ok := splitEpochName(inner); ok {
					scrubTempEpoch(rep, d, i, base, epoch, decided, repair)
					break
				}
				m, err := ReadManifest(d, n)
				if err != nil {
					rep.add(i, n, SevError, fmt.Sprintf("unreadable manifest: %v", err), false)
					break
				}
				key := m.Array + m.Suffix
				st := manifestState{disk: i, base: inner, epoch: m.Epoch}
				st.valid = m.TotalBytes == 0 || VerifyData(d, inner, m) == nil
				if strings.HasSuffix(inner, ".prev") {
					prevs[key] = append(prevs[key], st)
					if !st.valid {
						repaired := repair && removePair(d, inner) == nil
						if repaired {
							rep.Removed++
						}
						rep.add(i, n, SevWarn, "retained previous epoch fails verification", repaired)
					}
				} else {
					finals[key] = append(finals[key], st)
					if st.valid {
						rep.Manifests++
					}
					// Invalid finals are judged per key after the walk:
					// whether this is debris or disaster depends on the
					// decided epoch and the other disks.
				}

			case isEpochData(n):
				if !have[n+".mfst"] {
					// Data with no manifest: the crash hit between the
					// data sync and the manifest write — never PREPARED.
					repaired := repair && d.Remove(n) == nil
					if repaired {
						rep.Removed++
					}
					rep.add(i, n, SevWarn, "torn prepare (epoch data without manifest)", repaired)
				}

			case strings.HasSuffix(n, ".prev"):
				if !have[n+".mfst"] {
					repaired := repair && d.Remove(n) == nil
					if repaired {
						rep.Removed++
					}
					rep.add(i, n, SevWarn, "retained data without manifest", repaired)
				}

			default:
				if !have[n+".mfst"] {
					rep.Legacy++
				}
			}
		}
	}

	// Pass 2: judge each key's committed state against its decision.
	for key, sts := range finals {
		e := decided[key]
		var broken []manifestState
		for _, st := range sts {
			if !st.valid && (e == 0 || st.epoch == e) {
				broken = append(broken, st)
			} else if !st.valid {
				// A corrupt final that is not the decided epoch: stale.
				rep.add(st.disk, ManifestName(st.base), SevWarn,
					fmt.Sprintf("stale epoch %d fails verification (decided epoch is %d)", st.epoch, e), false)
			}
		}
		if len(broken) == 0 {
			continue
		}
		if e == 0 {
			for _, st := range broken {
				rep.add(st.disk, ManifestName(st.base), SevError,
					"committed data fails verification and no decision record exists to fall back from", false)
			}
			continue
		}
		// The decided epoch is unreadable somewhere. Fall the whole key
		// back to epoch e-1 if every disk can still serve it.
		target := e - 1
		rollable := target > 0
		for _, st := range sts {
			if serves(st, target) {
				continue
			}
			found := false
			for _, p := range prevs[key] {
				if p.disk == st.disk && serves(p, target) {
					found = true
					break
				}
			}
			if !found {
				rollable = false
			}
		}
		if !rollable {
			for _, st := range broken {
				rep.add(st.disk, ManifestName(st.base), SevError,
					fmt.Sprintf("committed epoch %d fails verification and no prior epoch is recoverable", e), false)
			}
			continue
		}
		repaired := false
		if repair {
			// Decision first: once it points at the prior epoch, every
			// reader resolves to the retained copies even if the
			// promotion below is interrupted.
			if err := WriteDecision(disks[decDisk[key]], key, target); err == nil {
				repaired = true
				rep.RolledBack++
				for _, st := range broken {
					d := disks[st.disk]
					_ = removePair(d, st.base)
					_ = d.Rename(ManifestName(PrevName(st.base)), ManifestName(st.base))
					_ = d.Rename(PrevName(st.base), st.base)
				}
			}
		}
		for _, st := range broken {
			rep.add(st.disk, ManifestName(st.base), SevError,
				fmt.Sprintf("committed epoch %d fails verification; prior epoch %d is recoverable", e, target), repaired)
		}
	}
	return rep, nil
}

// scrubTempEpoch judges one PREPARED epoch found on a disk.
func scrubTempEpoch(rep *ScrubReport, d Disk, disk int, base string, epoch uint64, decided map[string]uint64, repair bool) {
	name := EpochManifestName(base, epoch)
	m, err := ReadManifest(d, name)
	if err != nil {
		repaired := repair && removeEpochPair(d, base, epoch)
		if repaired {
			rep.Removed++
		}
		rep.add(disk, name, SevWarn, fmt.Sprintf("unreadable epoch manifest: %v", err), repaired)
		return
	}
	key := m.Array + m.Suffix
	if decided[key] != epoch {
		// Never decided (or superseded): a crash before commit. The
		// committed epoch is untouched; this is sweepable debris.
		repaired := repair && removeEpochPair(d, base, epoch)
		if repaired {
			rep.Removed++
		}
		rep.add(disk, name, SevWarn, "prepared epoch was never committed", repaired)
		return
	}
	// Decided: the commit was interrupted mid-promotion. Roll forward.
	if repair {
		if _, err := RollForward(d, base, epoch); err != nil {
			rep.add(disk, name, SevError, fmt.Sprintf("roll-forward failed: %v", err), false)
			return
		}
		rep.RolledForward++
		rep.add(disk, name, SevWarn, "interrupted commit rolled forward", true)
		return
	}
	probe := EpochName(base, epoch)
	if !exists(d, probe) {
		probe = base
	}
	if m.TotalBytes > 0 {
		if verr := VerifyData(d, probe, m); verr != nil {
			rep.add(disk, name, SevError, fmt.Sprintf("interrupted commit not recoverable: %v", verr), false)
			return
		}
	}
	rep.add(disk, name, SevWarn, "interrupted commit (roll-forward pending)", false)
}

// serves reports whether a manifest slot can serve the given epoch.
func serves(st manifestState, epoch uint64) bool { return st.valid && st.epoch == epoch }

// isEpochData reports whether a name is "<base>.e<digits>" temp data.
func isEpochData(n string) bool {
	_, _, ok := splitEpochName(n)
	return ok
}

// removePair removes a data file and its manifest.
func removePair(d Disk, base string) error {
	err := d.Remove(base)
	if merr := d.Remove(ManifestName(base)); err == nil {
		err = merr
	}
	return err
}

// removeEpochPair removes a temp epoch's files, reporting success.
func removeEpochPair(d Disk, base string, epoch uint64) bool {
	RemoveEpoch(d, base, epoch)
	return true
}
