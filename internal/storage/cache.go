package storage

import "container/list"

// blockCache models a file system buffer cache at block granularity with
// LRU eviction. It tracks residency only — data lives in the wrapped
// Disk — which is all the cost model needs.
type blockCache struct {
	blockSize int
	capacity  int64 // bytes
	used      int64
	lru       *list.List // of blockKey, front = most recent
	index     map[blockKey]*list.Element
}

type blockKey struct {
	file  string
	block int64
}

func newBlockCache(blockSize int, capacity int64) *blockCache {
	return &blockCache{
		blockSize: blockSize,
		capacity:  capacity,
		lru:       list.New(),
		index:     make(map[blockKey]*list.Element),
	}
}

func (c *blockCache) blocksOf(off, n int64) (first, last int64) {
	bs := int64(c.blockSize)
	return off / bs, (off + n - 1) / bs
}

// contains reports whether the whole byte range [off, off+n) is resident.
func (c *blockCache) contains(file string, off, n int64) bool {
	if c == nil || c.capacity == 0 || n <= 0 {
		return false
	}
	first, last := c.blocksOf(off, n)
	for b := first; b <= last; b++ {
		if _, ok := c.index[blockKey{file, b}]; !ok {
			return false
		}
	}
	return true
}

// insert marks the byte range resident, touching LRU order and evicting
// as needed.
func (c *blockCache) insert(file string, off, n int64) {
	if c == nil || c.capacity == 0 || n <= 0 {
		return
	}
	first, last := c.blocksOf(off, n)
	for b := first; b <= last; b++ {
		k := blockKey{file, b}
		if e, ok := c.index[k]; ok {
			c.lru.MoveToFront(e)
			continue
		}
		c.index[k] = c.lru.PushFront(k)
		c.used += int64(c.blockSize)
		for c.used > c.capacity {
			oldest := c.lru.Back()
			if oldest == nil {
				break
			}
			ok := oldest.Value.(blockKey)
			c.lru.Remove(oldest)
			delete(c.index, ok)
			c.used -= int64(c.blockSize)
		}
	}
}

// drop removes every resident block of the named file.
func (c *blockCache) drop(file string) {
	if c == nil {
		return
	}
	for e := c.lru.Front(); e != nil; {
		next := e.Next()
		if e.Value.(blockKey).file == file {
			delete(c.index, e.Value.(blockKey))
			c.lru.Remove(e)
			c.used -= int64(c.blockSize)
		}
		e = next
	}
}

// flush empties the cache.
func (c *blockCache) flush() {
	if c == nil {
		return
	}
	c.lru.Init()
	c.index = make(map[blockKey]*list.Element)
	c.used = 0
}
