package storage

import (
	"fmt"
	"sort"
	"sync"
)

// MemDisk is an in-memory Disk. With Discard set, file contents are not
// retained — only sizes — which lets performance experiments move
// hundreds of megabytes without holding them; reads then return zeros.
//
// MemDisk is safe for concurrent use by multiple goroutines (the
// real-time runtime runs servers concurrently even though each disk
// belongs to one server).
type MemDisk struct {
	// Discard drops written data, keeping sizes only.
	Discard bool

	mu    sync.Mutex
	files map[string]*memFile
}

// NewMemDisk returns an empty in-memory disk that retains data.
func NewMemDisk() *MemDisk { return &MemDisk{} }

// NewNullDisk returns an in-memory disk that discards all data: the
// paper's "infinitely fast disk".
func NewNullDisk() *MemDisk { return &MemDisk{Discard: true} }

type memFile struct {
	disk *MemDisk
	name string
	mu   sync.Mutex
	data []byte
	size int64
}

func (d *MemDisk) getOrCreate(name string, truncate bool) *memFile {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.files == nil {
		d.files = make(map[string]*memFile)
	}
	f, ok := d.files[name]
	if !ok {
		f = &memFile{disk: d, name: name}
		d.files[name] = f
	} else if truncate {
		f.mu.Lock()
		f.data = nil
		f.size = 0
		f.mu.Unlock()
	}
	return f
}

// Create implements Disk.
func (d *MemDisk) Create(name string) (File, error) {
	return d.getOrCreate(name, true), nil
}

// Open implements Disk.
func (d *MemDisk) Open(name string) (File, error) {
	d.mu.Lock()
	f, ok := d.files[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("memdisk: open %s: no such file", name)
	}
	return f, nil
}

// Remove implements Disk.
func (d *MemDisk) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; !ok {
		return fmt.Errorf("memdisk: remove %s: no such file", name)
	}
	delete(d.files, name)
	return nil
}

// Rename implements Disk, replacing any existing destination.
func (d *MemDisk) Rename(oldName, newName string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[oldName]
	if !ok {
		return fmt.Errorf("memdisk: rename %s: no such file", oldName)
	}
	delete(d.files, oldName)
	f.name = newName
	d.files[newName] = f
	return nil
}

// List implements Disk.
func (d *MemDisk) List() ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// FlushCache implements Disk; MemDisk has no cache.
func (d *MemDisk) FlushCache() {}

// Exists reports whether the named file exists.
func (d *MemDisk) Exists(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[name]
	return ok
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("memdisk: negative offset %d", off)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	end := off + int64(len(p))
	if end > f.size {
		f.size = end
	}
	if !f.disk.Discard {
		if end > int64(len(f.data)) {
			grown := make([]byte, end)
			copy(grown, f.data)
			f.data = grown
		}
		copy(f.data[off:end], p)
	}
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("memdisk: negative offset %d", off)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if off >= f.size {
		return 0, fmt.Errorf("memdisk: read %s at %d beyond size %d", f.name, off, f.size)
	}
	n := len(p)
	short := false
	if off+int64(n) > f.size {
		n = int(f.size - off)
		short = true
	}
	if f.disk.Discard {
		for i := 0; i < n; i++ {
			p[i] = 0
		}
	} else {
		copy(p[:n], f.data[off:off+int64(n)])
	}
	if short {
		return n, fmt.Errorf("memdisk: short read of %s: %d of %d bytes", f.name, n, len(p))
	}
	return n, nil
}

func (f *memFile) Sync() error { return nil }

func (f *memFile) Size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size, nil
}

func (f *memFile) Close() error { return nil }
