// Package costmodel predicts the elapsed time of a Panda collective
// operation from the schemas and the machine parameters, without
// running it — the cost model the paper names as future work ("we are
// developing a cost model to predict Panda's performance given an
// in-memory and on-disk schema").
//
// The model walks the same plan geometry the servers execute — chunk
// assignment, sub-chunk splitting, per-client pieces — and prices each
// server's serial loop:
//
//	elapsed(server) = Σ_subchunks [ network(subchunk) + disk(subchunk) ]
//
// where network covers the request/reply latencies and the sub-chunk's
// bytes through the server's port, and disk is the AIX model's cost of
// the sequential request (zero for fast disks). Client-side egress and
// reorganization copies give per-client lower bounds. The prediction is
// the startup overhead plus the slowest node, with network/disk overlap
// credited when the write pipeline is enabled.
//
// Accuracy is validated against the discrete-event simulation in
// costmodel_test.go (within ~15 % across the paper's configurations);
// the point of the model is schema selection — ranking layouts before
// writing a byte — not microsecond agreement.
package costmodel

import (
	"time"

	"panda/internal/array"
	"panda/internal/core"
	"panda/internal/mpi"
	"panda/internal/storage"
)

// Inputs describes the operation to predict.
type Inputs struct {
	// Cfg is the deployment (clients, servers, sub-chunk limit,
	// pipeline, startup overhead, copy rate).
	Cfg core.Config
	// Specs are the arrays of the collective call.
	Specs []core.ArraySpec
	// Link is the interconnect model.
	Link mpi.LinkConfig
	// Topo, when non-nil, prices cross-rack transfers differently from
	// in-rack ones: every message is charged the sender overhead, a
	// cross-rack piece pays the spine latency both ways (request and
	// data), and cross-rack bytes flow at the uplink bandwidth when the
	// rack's uplink is the narrower pipe. Nil reproduces the uniform
	// model exactly.
	Topo *mpi.Topology
	// Disk is the per-I/O-node file system model; FastDisk ignores it.
	Disk storage.AIXModel
	// FastDisk prices disk requests at zero (paper Figures 5, 6, 9).
	FastDisk bool
	// Write selects write (true) or read (false).
	Write bool
}

// Breakdown itemizes a prediction.
type Breakdown struct {
	// Startup is the fixed per-operation cost.
	Startup time.Duration
	// PerServer is each I/O node's predicted busy time.
	PerServer []time.Duration
	// PerServerDisk and PerServerNet split it.
	PerServerDisk []time.Duration
	PerServerNet  []time.Duration
	// PerClient is each compute node's predicted lower bound
	// (egress/ingress plus reorganization copies).
	PerClient []time.Duration
	// Elapsed is the predicted operation time.
	Elapsed time.Duration
}

func bytesTime(n int64, rate float64) time.Duration {
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(n) / rate * float64(time.Second))
}

// Predict estimates the elapsed time of one collective operation.
func Predict(in Inputs) Breakdown {
	cfg := in.Cfg
	b := Breakdown{
		Startup:       cfg.StartupOverhead,
		PerServer:     make([]time.Duration, cfg.NumServers),
		PerServerDisk: make([]time.Duration, cfg.NumServers),
		PerServerNet:  make([]time.Duration, cfg.NumServers),
		PerClient:     make([]time.Duration, cfg.NumClients),
	}

	clientBytes := make([]int64, cfg.NumClients)
	clientReorg := make([]int64, cfg.NumClients)

	// Resolve the effective links once: with a topology the in-rack
	// link may override the base, and a rack's uplink may be narrower.
	link := in.Topo.LocalLink(in.Link)
	uplink := link.Bandwidth
	if in.Topo != nil {
		if up := in.Topo.UplinkBandwidth(in.Link); up < uplink {
			uplink = up
		}
	}

	for s := 0; s < cfg.NumServers; s++ {
		var disk, net time.Duration
		for _, spec := range in.Specs {
			elem := spec.ElemSize
			subLimit := spec.SubchunkBytes
			if subLimit <= 0 {
				subLimit = cfg.SubchunkBytes
			}
			if subLimit <= 0 {
				subLimit = core.DefaultSubchunkBytes
			}
			for idx := s; idx < spec.Disk.NumChunks(); idx += cfg.NumServers {
				chunk := spec.Disk.Chunk(idx)
				if chunk.IsEmpty() {
					continue
				}
				for _, sub := range array.SplitContiguous(chunk, elem, subLimit) {
					subBytes := sub.NumElems() * int64(elem)
					if !in.FastDisk {
						if in.Write {
							disk += in.Disk.WriteCost(int(subBytes), false)
						} else {
							disk += in.Disk.ReadCost(int(subBytes), false, false)
						}
					}
					// Network: one request and one data transfer per
					// piece; the data serializes through the server's
					// port, the small request costs a round of latency.
					pieces, crossPieces := 0, 0
					crossBytes := int64(0)
					for c := 0; c < spec.Mem.NumChunks(); c++ {
						mchunk := spec.Mem.Chunk(c)
						sect, ok := array.Intersect(mchunk, sub)
						if !ok {
							continue
						}
						pieces++
						n := sect.NumElems() * int64(elem)
						clientBytes[c] += n
						if in.Topo != nil && in.Topo.CrossRack(c, cfg.ServerRank(s)) {
							crossPieces++
							crossBytes += n
						}
						if _, contig := array.ContiguousIn(mchunk, sect); !contig {
							clientReorg[c] += n
						}
						if _, contig := array.ContiguousIn(sub, sect); !contig && pieces > 1 {
							// Server-side reorganization of this piece.
							net += bytesTime(n, cfg.CopyRate)
						}
					}
					net += time.Duration(pieces) * 2 * link.Latency
					if in.Topo != nil {
						// Sender CPU occupancy for request and data, and
						// the spine round trip for cross-rack pieces.
						net += time.Duration(pieces) * 2 * in.Topo.SendOverhead
						net += time.Duration(crossPieces) * 2 * in.Topo.CrossLatency
					}
					net += bytesTime(subBytes-crossBytes, link.Bandwidth)
					net += bytesTime(crossBytes, uplink)
				}
			}
		}
		b.PerServerDisk[s] = disk
		b.PerServerNet[s] = net
		if cfg.Pipeline > 1 {
			// Overlapped gathering and disk I/O: the slower side
			// dominates, the faster hides behind it.
			if disk > net {
				b.PerServer[s] = disk
			} else {
				b.PerServer[s] = net
			}
		} else {
			b.PerServer[s] = disk + net
		}
	}

	for c := 0; c < cfg.NumClients; c++ {
		b.PerClient[c] = bytesTime(clientBytes[c], link.Bandwidth) +
			bytesTime(clientReorg[c], cfg.CopyRate)
	}

	worst := time.Duration(0)
	for _, d := range b.PerServer {
		if d > worst {
			worst = d
		}
	}
	for _, d := range b.PerClient {
		if d > worst {
			worst = d
		}
	}
	b.Elapsed = b.Startup + worst
	return b
}

// Rank orders candidate disk schemas for an array by predicted write
// time, best first — the schema-selection use case the paper motivates
// the cost model with. It returns indices into candidates.
func Rank(cfg core.Config, link mpi.LinkConfig, disk storage.AIXModel,
	mem array.Schema, elemSize int, candidates []array.Schema, write bool) []int {
	type scored struct {
		idx int
		t   time.Duration
	}
	out := make([]scored, len(candidates))
	for i, cand := range candidates {
		in := Inputs{
			Cfg:   cfg,
			Specs: []core.ArraySpec{{Name: "x", ElemSize: elemSize, Mem: mem, Disk: cand}},
			Link:  link,
			Disk:  disk,
			Write: write,
		}
		out[i] = scored{idx: i, t: Predict(in).Elapsed}
	}
	// Insertion sort: candidate lists are short.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].t < out[j-1].t; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	idxs := make([]int, len(out))
	for i, s := range out {
		idxs[i] = s.idx
	}
	return idxs
}
