package costmodel

import (
	"fmt"
	"math"
	"testing"
	"time"

	"panda/internal/array"
	"panda/internal/clock"
	"panda/internal/core"
	"panda/internal/harness"
	"panda/internal/mpi"
	"panda/internal/storage"
)

// simulate runs the real protocol on the simulated SP2 and returns the
// paper's elapsed metric.
func simulate(t *testing.T, in Inputs) time.Duration {
	t.Helper()
	mk := func(i int, clk clock.Clock) storage.Disk {
		if in.FastDisk {
			return storage.NewNullDisk()
		}
		return storage.NewSimDisk(storage.NewNullDisk(), in.Disk, clk)
	}
	cfg := in.Cfg
	res, err := core.RunSim(cfg, in.Link, mk, func(cl *core.Client) error {
		bufs := make([][]byte, len(in.Specs))
		for i, spec := range in.Specs {
			bufs[i] = make([]byte, spec.MemChunkBytes(cl.Rank()))
		}
		if in.Write {
			return cl.WriteArrays("", in.Specs, bufs)
		}
		// Fabricate files through a write first, then measure the
		// read; LastElapsed reflects the final call.
		if err := cl.WriteArrays("", in.Specs, bufs); err != nil {
			return err
		}
		return cl.ReadArrays("", in.Specs, bufs)
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.MaxClientElapsed()
}

func inputsFor(sizeMB int64, nc, ion int, trad, write, fast bool) Inputs {
	shape, err := harness.Shape3D(sizeMB * harness.MB)
	if err != nil {
		panic(err)
	}
	mesh := harness.Meshes()[nc]
	mem := array.MustSchema(shape, []array.Dist{array.Block, array.Block, array.Block}, mesh)
	disk := mem
	if trad {
		disk = array.MustSchema(shape, []array.Dist{array.Block, array.Star, array.Star}, []int{ion})
	}
	return Inputs{
		Cfg: core.Config{NumClients: nc, NumServers: ion,
			StartupOverhead: harness.StartupOverhead, CopyRate: harness.CopyRate,
			// The model predicts the paper's plain protocol; simulate the same.
			PlainWrites: true},
		Specs:    []core.ArraySpec{{Name: "x", ElemSize: harness.ElemSize, Mem: mem, Disk: disk}},
		Link:     mpi.SP2Link(),
		Disk:     storage.SP2AIX(),
		FastDisk: fast,
		Write:    write,
	}
}

func TestPredictionTracksSimulation(t *testing.T) {
	// Reads with real disks hit the (just-written) buffer cache in
	// the simulate helper, so the comparison covers real-disk writes
	// and fast-disk reads/writes — the configurations where the paper
	// publishes figures for both.
	cases := []struct {
		name string
		in   Inputs
		tol  float64
	}{
		{"write-natural-8c2s-8MB", inputsFor(8, 8, 2, false, true, false), 0.15},
		{"write-natural-8c4s-16MB", inputsFor(16, 8, 4, false, true, false), 0.15},
		{"write-trad-16c4s-8MB", inputsFor(8, 16, 4, true, true, false), 0.15},
		{"write-natural-fast-32c4s-16MB", inputsFor(16, 32, 4, false, true, true), 0.25},
		{"write-trad-fast-16c4s-16MB", inputsFor(16, 16, 4, true, true, true), 0.30},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Predict(c.in).Elapsed
			want := simulate(t, c.in)
			err := math.Abs(got.Seconds()-want.Seconds()) / want.Seconds()
			if err > c.tol {
				t.Fatalf("predicted %v, simulated %v (relative error %.1f%% > %.0f%%)",
					got, want, err*100, c.tol*100)
			}
		})
	}
}

func TestPredictionScalesWithSizeAndServers(t *testing.T) {
	small := Predict(inputsFor(8, 8, 2, false, true, false)).Elapsed
	big := Predict(inputsFor(32, 8, 2, false, true, false)).Elapsed
	ratio := big.Seconds() / small.Seconds()
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("4x data predicted %.2fx time", ratio)
	}
	two := Predict(inputsFor(32, 8, 2, false, true, false)).Elapsed
	eight := Predict(inputsFor(32, 8, 8, false, true, false)).Elapsed
	speedup := two.Seconds() / eight.Seconds()
	if speedup < 3.0 || speedup > 4.5 {
		t.Fatalf("4x servers predicted %.2fx speedup", speedup)
	}
}

func TestPredictionBreakdownConsistent(t *testing.T) {
	b := Predict(inputsFor(16, 8, 4, true, true, false))
	if len(b.PerServer) != 4 || len(b.PerClient) != 8 {
		t.Fatalf("breakdown sizes: %d servers, %d clients", len(b.PerServer), len(b.PerClient))
	}
	for s := range b.PerServer {
		if b.PerServer[s] != b.PerServerDisk[s]+b.PerServerNet[s] {
			t.Fatalf("server %d: %v != %v + %v (pipeline=1 must be serial)",
				s, b.PerServer[s], b.PerServerDisk[s], b.PerServerNet[s])
		}
		if b.PerServerDisk[s] <= 0 {
			t.Fatalf("server %d predicted zero disk time", s)
		}
	}
	if b.Elapsed <= b.Startup {
		t.Fatal("elapsed not above startup")
	}
}

func TestPipelinePredictionOverlaps(t *testing.T) {
	// Real disks: the pipeline hides sub-chunk gathering behind disk
	// writes, so the overlapped prediction must be strictly smaller.
	in := inputsFor(16, 16, 4, true, true, false)
	serial := Predict(in).Elapsed
	in.Cfg.Pipeline = 4
	overlapped := Predict(in).Elapsed
	if overlapped >= serial {
		t.Fatalf("pipeline prediction %v not below serial %v", overlapped, serial)
	}
}

func TestRankPrefersFewerSeeksAndRightSizedChunks(t *testing.T) {
	// Candidate disk schemas for a 16 MB array on 4 I/O nodes: the
	// 1-chunk-per-node traditional layout, a natural-chunking layout,
	// and an absurdly fine-grained layout whose sub-1MB chunks fall
	// down the request-size curve. The fine-grained one must rank
	// last.
	shape, _ := harness.Shape3D(16 * harness.MB)
	mem := array.MustSchema(shape, []array.Dist{array.Block, array.Block, array.Block}, []int{2, 2, 2})
	cands := []array.Schema{
		array.MustSchema(shape, []array.Dist{array.Block, array.Star, array.Star}, []int{4}),
		mem,
		array.MustSchema(shape, []array.Dist{array.Block, array.Star, array.Star}, []int{128}),
	}
	cfg := core.Config{NumClients: 8, NumServers: 4,
		StartupOverhead: harness.StartupOverhead, CopyRate: harness.CopyRate}
	order := Rank(cfg, mpi.SP2Link(), storage.SP2AIX(), mem, harness.ElemSize, cands, true)
	if order[len(order)-1] != 2 {
		t.Fatalf("fine-grained schema not ranked last: %v", order)
	}
}

func TestRankAgreesWithSimulation(t *testing.T) {
	// The model's ranking of coarse vs fine striping must match what
	// the simulator measures.
	shape, _ := harness.Shape3D(8 * harness.MB)
	mem := array.MustSchema(shape, []array.Dist{array.Block, array.Block, array.Block}, []int{2, 2, 2})
	coarse := array.MustSchema(shape, []array.Dist{array.Block, array.Star, array.Star}, []int{2})
	fine := array.MustSchema(shape, []array.Dist{array.Block, array.Star, array.Star}, []int{64})
	cfg := core.Config{NumClients: 8, NumServers: 2,
		StartupOverhead: harness.StartupOverhead, CopyRate: harness.CopyRate, PlainWrites: true}

	var simTimes [2]time.Duration
	for i, disk := range []array.Schema{coarse, fine} {
		in := Inputs{Cfg: cfg, Link: mpi.SP2Link(), Disk: storage.SP2AIX(), Write: true,
			Specs: []core.ArraySpec{{Name: fmt.Sprintf("v%d", i), ElemSize: harness.ElemSize, Mem: mem, Disk: disk}}}
		simTimes[i] = simulate(t, in)
	}
	order := Rank(cfg, mpi.SP2Link(), storage.SP2AIX(), mem, harness.ElemSize,
		[]array.Schema{coarse, fine}, true)
	simSaysCoarseFirst := simTimes[0] < simTimes[1]
	modelSaysCoarseFirst := order[0] == 0
	if simSaysCoarseFirst != modelSaysCoarseFirst {
		t.Fatalf("model order %v disagrees with simulation (%v vs %v)", order, simTimes[0], simTimes[1])
	}
}
