package panda

// Benchmarks regenerating the paper's evaluation, one per table/figure.
//
// Each figure benchmark runs the full Panda protocol on the simulated
// SP2 for a representative cell of that figure and reports the paper's
// metrics: aggregate MB/s and normalized (per-I/O-node over peak)
// throughput. Arrays are scaled down 16x by default so `go test
// -bench=.` completes quickly; run `go run ./cmd/pandabench` for the
// paper-sized sweeps and full tables.
//
// The micro-benchmarks at the bottom cover the hot primitives
// (hyperslab copy, sub-chunk splitting, protocol encode/decode).

import (
	"fmt"
	"testing"

	"panda/internal/array"
	"panda/internal/harness"
)

// benchScale shrinks arrays 2^4 = 16x relative to the paper.
const benchScale = 4

// benchFigureCell runs one cell of a figure per iteration and reports
// the paper's metrics.
func benchFigureCell(b *testing.B, id string, sizeMB int64, ion int) {
	b.Helper()
	f, err := harness.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opt := harness.Options{Scale: benchScale}
	var last harness.Point
	for i := 0; i < b.N; i++ {
		p, err := harness.RunCell(f, sizeMB*harness.MB>>benchScale, ion, opt)
		if err != nil {
			b.Fatal(err)
		}
		last = p
	}
	b.ReportMetric(last.AggMBs, "agg-MB/s")
	b.ReportMetric(last.Norm, "normalized")
	b.ReportMetric(float64(last.Messages), "messages")
}

// benchFigure sweeps the figure's I/O node axis at one array size.
func benchFigure(b *testing.B, id string, sizeMB int64) {
	f, err := harness.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for _, ion := range f.IONodes {
		ion := ion
		b.Run(fmt.Sprintf("size=%dMB/ion=%d", sizeMB, ion), func(b *testing.B) {
			benchFigureCell(b, id, sizeMB, ion)
		})
	}
}

// BenchmarkTable1Calibration regenerates the measured rows of Table 1.
func BenchmarkTable1Calibration(b *testing.B) {
	var c harness.Calibration
	var err error
	for i := 0; i < b.N; i++ {
		c, err = harness.Calibrate()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.ReadPeakMBs, "fs-read-MB/s")
	b.ReportMetric(c.WritePeakMBs, "fs-write-MB/s")
	b.ReportMetric(float64(c.Latency.Microseconds()), "net-latency-us")
	b.ReportMetric(c.BandwidthMBs, "net-MB/s")
}

// BenchmarkFig3NaturalRead — reading, natural chunking, 8 compute nodes.
func BenchmarkFig3NaturalRead(b *testing.B) { benchFigure(b, "fig3", 128) }

// BenchmarkFig4NaturalWrite — writing, natural chunking, 8 compute nodes.
func BenchmarkFig4NaturalWrite(b *testing.B) { benchFigure(b, "fig4", 128) }

// BenchmarkFig5FastDiskRead — reading, 32 compute nodes, infinitely
// fast disk (network-bound).
func BenchmarkFig5FastDiskRead(b *testing.B) { benchFigure(b, "fig5", 128) }

// BenchmarkFig6FastDiskWrite — writing, 32 compute nodes, infinitely
// fast disk.
func BenchmarkFig6FastDiskWrite(b *testing.B) { benchFigure(b, "fig6", 128) }

// BenchmarkFig7TradRead — reading, traditional order on disk, 32
// compute nodes (reorganization on the fly).
func BenchmarkFig7TradRead(b *testing.B) { benchFigure(b, "fig7", 128) }

// BenchmarkFig8TradWrite — writing, traditional order on disk, 32
// compute nodes.
func BenchmarkFig8TradWrite(b *testing.B) { benchFigure(b, "fig8", 128) }

// BenchmarkFig9TradFastWrite — writing, traditional order, 16 compute
// nodes, fast disk: exposes the reorganization cost (paper: 38-86% of
// MPI peak vs ~90% for natural chunking).
func BenchmarkFig9TradFastWrite(b *testing.B) { benchFigure(b, "fig9", 128) }

// BenchmarkMultiArrayTimestep — the paper's multiple-array experiment:
// three arrays per collective call reach single-array throughput when
// chunks stay large.
func BenchmarkMultiArrayTimestep(b *testing.B) { benchFigure(b, "multi", 96) }

// BenchmarkBaselineComparison — server-directed vs two-phase vs
// client-directed on a reorganizing write (§4's argument).
func BenchmarkBaselineComparison(b *testing.B) {
	var rows []harness.CompareRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = harness.RunComparison(16*harness.MB, 8, 2, harness.Traditional, harness.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].AggMBs, "panda-MB/s")
	b.ReportMetric(rows[1].AggMBs, "twophase-MB/s")
	b.ReportMetric(rows[2].AggMBs, "naive-MB/s")
	b.ReportMetric(rows[0].Elapsed.Seconds()/rows[2].Elapsed.Seconds(), "panda/naive-time")
}

// BenchmarkAblationSubchunk — the paper fixed the sub-chunk size at
// 1 MB "after experimentation"; this sweep regenerates that choice.
func BenchmarkAblationSubchunk(b *testing.B) {
	for _, sc := range []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		sc := sc
		b.Run(fmt.Sprintf("subchunk=%dKB", sc>>10), func(b *testing.B) {
			var pts []harness.AblationPoint
			var err error
			for i := 0; i < b.N; i++ {
				pts, err = harness.RunSubchunkAblation(16*harness.MB, 8, 4, []int64{sc}, harness.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pts[0].AggMBs, "agg-MB/s")
		})
	}
}

// BenchmarkAblationPipeline — the paper proposes non-blocking
// communication as future work; the pipeline depth implements it.
func BenchmarkAblationPipeline(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var pts []harness.AblationPoint
			var err error
			for i := 0; i < b.N; i++ {
				pts, err = harness.RunPipelineAblation(16*harness.MB, 16, 4, []int{depth}, harness.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pts[0].AggMBs, "agg-MB/s")
		})
	}
}

// BenchmarkAblationStriping — chunk-level round-robin striping
// granularity (k disk chunks per I/O node; the paper argues for coarse
// chunk-level striping over block-level).
func BenchmarkAblationStriping(b *testing.B) {
	for _, k := range []int{1, 4, 16} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var pts []harness.AblationPoint
			var err error
			for i := 0; i < b.N; i++ {
				pts, err = harness.RunGranularityAblation(16*harness.MB, 8, 4, []int{k}, harness.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			if len(pts) > 0 {
				b.ReportMetric(pts[0].AggMBs, "agg-MB/s")
			}
		})
	}
}

// --- micro-benchmarks of the hot primitives -----------------------------

func BenchmarkCopyRegionContiguous(b *testing.B) {
	outer := array.Box([]int{64, 64, 64})
	sect := array.NewRegion([]int{16, 0, 0}, []int{48, 64, 64})
	src := make([]byte, outer.NumElems()*8)
	dst := make([]byte, outer.NumElems()*8)
	b.SetBytes(sect.NumElems() * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		array.CopyRegion(dst, outer, src, outer, sect, 8)
	}
}

func BenchmarkCopyRegionStrided(b *testing.B) {
	outer := array.Box([]int{64, 64, 64})
	sect := array.NewRegion([]int{8, 8, 8}, []int{56, 56, 56})
	src := make([]byte, outer.NumElems()*8)
	dst := make([]byte, outer.NumElems()*8)
	b.SetBytes(sect.NumElems() * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		array.CopyRegion(dst, outer, src, outer, sect, 8)
	}
}

func BenchmarkSplitContiguous(b *testing.B) {
	r := array.Box([]int{128, 128, 128})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := array.SplitContiguous(r, 4, 1<<20); len(got) == 0 {
			b.Fatal("no pieces")
		}
	}
}

// BenchmarkEndToEndRealMode measures the in-process real-time runtime
// (the functional path the examples use), wall-clock.
func BenchmarkEndToEndRealMode(b *testing.B) {
	memory := NewLayout("m", []int{2, 2, 2})
	a, err := NewArray("bench", []int{64, 64, 64}, 8,
		memory, []Distribution{BLOCK, BLOCK, BLOCK},
		memory, []Distribution{BLOCK, BLOCK, BLOCK})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(a.TotalBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster, err := NewCluster(Config{ComputeNodes: 8, IONodes: 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := cluster.Run(func(n *Node) error {
			buf := make([]byte, n.ChunkBytes(a))
			if err := n.Bind(a, buf); err != nil {
				return err
			}
			if err := n.WriteArray(a); err != nil {
				return err
			}
			return n.ReadArray(a)
		}); err != nil {
			b.Fatal(err)
		}
	}
}
