package panda

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"panda/internal/storage"
)

// startTestDaemon runs a daemon over real files in a temp dir.
func startTestDaemon(t *testing.T, dir string, tuning Tuning) *Daemon {
	t.Helper()
	d, err := StartDaemon(DaemonConfig{
		Dir:         dir,
		ClientSlots: 8,
		IONodes:     2,
		OpTimeout:   30 * time.Second,
		Tuning:      tuning,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("StartDaemon: %v", err)
	}
	return d
}

// sessionArray declares a nodes-chunk array named name.
func sessionArray(t *testing.T, name string, nodes int) *Array {
	t.Helper()
	a, err := NewArray(name, []int{nodes * 16, 8}, 4,
		NewLayout("mem", []int{nodes}), []Distribution{BLOCK, NONE},
		NewLayout("disk", []int{2}), []Distribution{BLOCK, NONE})
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	return a
}

func fillPattern(buf []byte, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Read(buf)
}

// TestDaemonCrossSessionReadback is the PR's acceptance scenario:
// client A creates and writes an array and disconnects; client B
// connects later, opens it by name alone, and reads it back bit-exact;
// a drain then exits clean and fsck finds nothing wrong.
func TestDaemonCrossSessionReadback(t *testing.T) {
	dir := t.TempDir()
	d := startTestDaemon(t, dir, Tuning{})

	const nodes = 2
	var wantMu sync.Mutex // session members run concurrently
	want := make(map[int][]byte)

	// Client A: create, write, disconnect.
	sa, err := Dial(SessionConfig{Addr: d.Addr(), Nodes: nodes, Tenant: "alice"})
	if err != nil {
		t.Fatalf("Dial A: %v", err)
	}
	ax := sessionArray(t, "X", nodes)
	if err := sa.Create(ax); err != nil {
		t.Fatalf("Create X: %v", err)
	}
	err = sa.Run(func(n *Node) error {
		buf := make([]byte, n.ChunkBytes(ax))
		fillPattern(buf, int64(n.Rank())+100)
		wantMu.Lock()
		want[n.Rank()] = append([]byte(nil), buf...)
		wantMu.Unlock()
		if err := n.Bind(ax, buf); err != nil {
			return err
		}
		return n.WriteArray(ax)
	})
	if err != nil {
		t.Fatalf("session A write: %v", err)
	}
	if err := sa.Close(); err != nil {
		t.Fatalf("close A: %v", err)
	}

	// Client B: open by name (no schema re-declaration), read, verify.
	sb, err := Dial(SessionConfig{Addr: d.Addr(), Nodes: nodes, Tenant: "bob"})
	if err != nil {
		t.Fatalf("Dial B: %v", err)
	}
	bx, err := sb.Open("X")
	if err != nil {
		t.Fatalf("Open X: %v", err)
	}
	var mu sync.Mutex
	got := make(map[int][]byte)
	err = sb.Run(func(n *Node) error {
		buf := make([]byte, n.ChunkBytes(bx))
		if err := n.Bind(bx, buf); err != nil {
			return err
		}
		if err := n.ReadArray(bx); err != nil {
			return err
		}
		mu.Lock()
		got[n.Rank()] = append([]byte(nil), buf...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("session B read: %v", err)
	}
	for r, w := range want {
		if !bytes.Equal(got[r], w) {
			t.Fatalf("chunk %d: read differs from written", r)
		}
	}
	if info, err := sb.Info(); err != nil || info.Arrays != 1 {
		t.Fatalf("info: %+v, %v", info, err)
	}
	if err := sb.Close(); err != nil {
		t.Fatalf("close B: %v", err)
	}

	if err := d.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// fsck-grade check on the daemon's data directories.
	disks := make([]storage.Disk, 2)
	for i := range disks {
		dsk, err := storage.NewOSDisk(fmt.Sprintf("%s/ion%d", dir, i))
		if err != nil {
			t.Fatal(err)
		}
		disks[i] = dsk
	}
	rep, err := storage.Scrub(disks, false)
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("post-drain scrub unhealthy: %+v", rep.Issues)
	}
}

// TestDaemonSchemaMismatch: re-creating a catalogued array under a
// different decomposition is refused with the typed sentinel.
func TestDaemonSchemaMismatch(t *testing.T) {
	d := startTestDaemon(t, t.TempDir(), Tuning{})
	defer d.Drain() //nolint:errcheck

	s1, err := Dial(SessionConfig{Addr: d.Addr(), Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	a1 := sessionArray(t, "Y", 2)
	if err := s1.Create(a1); err != nil {
		t.Fatalf("create: %v", err)
	}
	// Same name and size, different disk decomposition.
	a2, err := NewArray("Y", []int{32, 8}, 4,
		NewLayout("mem", []int{2}), []Distribution{BLOCK, NONE},
		NewLayout("disk", []int{2}), []Distribution{NONE, BLOCK})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Create(a2); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("want ErrSchemaMismatch, got %v", err)
	}
	// Idempotent create under the identical schema is fine.
	if err := s1.Create(a1); err != nil {
		t.Fatalf("re-create identical: %v", err)
	}
	if _, err := s1.Open("Z"); !errors.Is(err, ErrUnknownArray) {
		t.Fatalf("want ErrUnknownArray, got %v", err)
	}
	s1.Close() //nolint:errcheck
}

// TestDaemonReloadUnderLoad: a live tuning reload (weights, pipeline)
// lands with zero failed in-flight operations, and the new weights are
// observable through Info alongside per-tenant metrics.
func TestDaemonReloadUnderLoad(t *testing.T) {
	d := startTestDaemon(t, t.TempDir(), Tuning{MaxInflight: 2})
	defer d.Drain() //nolint:errcheck

	s, err := Dial(SessionConfig{Addr: d.Addr(), Nodes: 1, Tenant: "load"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck
	a := sessionArray(t, "W", 1)
	if err := s.Create(a); err != nil {
		t.Fatal(err)
	}

	// Writer loop: timesteps while the tuning changes under it.
	done := make(chan error, 1)
	go func() {
		done <- s.Run(func(n *Node) error {
			buf := make([]byte, n.ChunkBytes(a))
			if err := n.Bind(a, buf); err != nil {
				return err
			}
			g := NewGroup("w")
			g.Include(a)
			for i := 0; i < 30; i++ {
				fillPattern(buf, int64(i))
				if err := n.Timestep(g); err != nil {
					return fmt.Errorf("timestep %d: %w", i, err)
				}
			}
			return nil
		})
	}()
	time.Sleep(50 * time.Millisecond)
	d.Reload(Tuning{MaxInflight: 4, Weights: map[string]int{"load": 7}, Pipeline: 2})
	if err := <-done; err != nil {
		t.Fatalf("writes failed across reload: %v", err)
	}

	info, err := s.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Weights["load"] != 7 || info.MaxInflight != 4 || info.Pipeline != 2 {
		t.Fatalf("reload not observable: %+v", info)
	}
	// Per-tenant attribution survived the reload.
	if info.Metrics["tenant_ops_load"] == nil {
		t.Fatalf("no tenant_ops_load counter in metrics: %v", info.Metrics)
	}
	s.Close() //nolint:errcheck
}

// TestDaemonChaosAttachDetach: sessions attach, write, and detach
// concurrently while a long-running tenant's collectives proceed
// unharmed.
func TestDaemonChaosAttachDetach(t *testing.T) {
	d := startTestDaemon(t, t.TempDir(), Tuning{MaxInflight: 3})

	// The resident tenant: writes timesteps throughout.
	s, err := Dial(SessionConfig{Addr: d.Addr(), Nodes: 2, Tenant: "resident"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck
	a := sessionArray(t, "R", 2)
	if err := s.Create(a); err != nil {
		t.Fatal(err)
	}
	resident := make(chan error, 1)
	go func() {
		resident <- s.Run(func(n *Node) error {
			buf := make([]byte, n.ChunkBytes(a))
			if err := n.Bind(a, buf); err != nil {
				return err
			}
			g := NewGroup("r")
			g.Include(a)
			for i := 0; i < 20; i++ {
				fillPattern(buf, int64(i))
				if err := n.Timestep(g); err != nil {
					return fmt.Errorf("resident timestep %d: %w", i, err)
				}
			}
			return nil
		})
	}()

	// The churn: short-lived single-node sessions racing one another.
	var wg sync.WaitGroup
	churnErr := make(chan error, 12)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				cs, err := Dial(SessionConfig{Addr: d.Addr(), Nodes: 1, Tenant: fmt.Sprintf("churn%d", w)})
				if err != nil {
					churnErr <- err
					return
				}
				ca := sessionArray(t, fmt.Sprintf("C%d", w), 1)
				if err := cs.Create(ca); err != nil {
					churnErr <- err
					cs.Close() //nolint:errcheck
					return
				}
				err = cs.Run(func(n *Node) error {
					buf := make([]byte, n.ChunkBytes(ca))
					fillPattern(buf, int64(w*100+k))
					if err := n.Bind(ca, buf); err != nil {
						return err
					}
					return n.WriteArray(ca)
				})
				cs.Close() //nolint:errcheck
				if err != nil {
					churnErr <- fmt.Errorf("churn %d.%d: %w", w, k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(churnErr)
	for err := range churnErr {
		t.Errorf("churn: %v", err)
	}
	if err := <-resident; err != nil {
		t.Fatalf("resident tenant disturbed: %v", err)
	}
	s.Close() //nolint:errcheck
	if err := d.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDaemonDrainRefusesAttach: once drained, the daemon is gone — new
// dials fail and the listener is closed.
func TestDaemonDrainRefusesAttach(t *testing.T) {
	d := startTestDaemon(t, t.TempDir(), Tuning{})
	addr := d.Addr()
	if err := d.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := Dial(SessionConfig{Addr: addr, Nodes: 1, DialBudget: -1}); err == nil {
		t.Fatal("dial succeeded after drain")
	}
}
