package panda

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"panda/internal/meta"
)

// SaveSchema writes a self-describing schema file for the group — the
// paper's ArrayGroup schema file (Figure 2 names one
// "simulation2.schema"). A sequential consumer can later interpret the
// per-I/O-node files with nothing but this document; see LoadSchema,
// AssembleArray and cmd/pandacat.
func (c *Cluster) SaveSchema(g *Group, path string) error {
	doc := meta.FromSpecs(g.Name(), c.cfg.NumServers, g.specs())
	return meta.Save(path, doc)
}

// Schema is a loaded schema document: the group's declaration plus the
// I/O-node count its files are striped over.
type Schema struct {
	doc meta.GroupMeta
}

// LoadSchema reads a schema file written by SaveSchema.
func LoadSchema(path string) (*Schema, error) {
	doc, err := meta.Load(path)
	if err != nil {
		return nil, err
	}
	if _, err := doc.Specs(); err != nil {
		return nil, err
	}
	return &Schema{doc: doc}, nil
}

// Group returns the group name recorded in the schema.
func (s *Schema) Group() string { return s.doc.Group }

// IONodes returns the number of I/O nodes the data set is striped over.
func (s *Schema) IONodes() int { return s.doc.IONodes }

// ArrayNames lists the arrays in write order.
func (s *Schema) ArrayNames() []string {
	names := make([]string, len(s.doc.Arrays))
	for i, a := range s.doc.Arrays {
		names[i] = a.Name
	}
	return names
}

// AssembleArray reassembles one array of a Panda data set into a single
// row-major (traditional order) file — the paper's migration of array
// data to a sequential platform, valid for every disk schema, not just
// BLOCK,*,*. dataDir is the cluster directory (the Config.Dir the data
// was written with, containing ion0/, ion1/, ...), suffix selects the
// operation instance ("" for plain writes, ".t3" for timestep 3,
// ".ckpt" for the checkpoint), and outPath receives the stream.
func AssembleArray(s *Schema, dataDir, name, suffix, outPath string) error {
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer out.Close()
	opener := func(ion int, fileName string) (io.ReaderAt, int64, error) {
		p := filepath.Join(dataDir, fmt.Sprintf("ion%d", ion), fileName)
		f, err := os.Open(p)
		if err != nil {
			return nil, 0, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, 0, err
		}
		return f, st.Size(), nil
	}
	return meta.Assemble(out, s.doc, name, suffix, opener)
}
