package panda

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fillChunk writes a pattern keyed by (seed, position) into a chunk
// buffer.
func fillChunk(buf []byte, seed uint32) {
	for i := 0; i+4 <= len(buf); i += 4 {
		binary.LittleEndian.PutUint32(buf[i:], seed+uint32(i))
	}
}

func checkChunk(buf []byte, seed uint32) error {
	for i := 0; i+4 <= len(buf); i += 4 {
		if got := binary.LittleEndian.Uint32(buf[i:]); got != seed+uint32(i) {
			return fmt.Errorf("byte %d: got %d, want %d", i, got, seed+uint32(i))
		}
	}
	return nil
}

func figure2Arrays(t *testing.T) (*Array, *Array, *Array, *Group) {
	t.Helper()
	memory := NewLayout("memory layout", []int{2, 2})
	disk := NewLayout("disk layout", []int{2})
	mk := func(name string, size []int) *Array {
		a, err := NewArray(name, size, 4,
			memory, []Distribution{BLOCK, BLOCK, NONE},
			disk, []Distribution{BLOCK, NONE, NONE})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	temperature := mk("temperature", []int{16, 16, 16})
	pressure := mk("pressure", []int{16, 16, 16})
	density := mk("density", []int{8, 8, 8})
	sim := NewGroup("Sim2")
	sim.Include(temperature)
	sim.Include(pressure)
	sim.Include(density)
	return temperature, pressure, density, sim
}

func TestFigure2Workflow(t *testing.T) {
	// The paper's Figure 2, condensed: three arrays in a group,
	// repeated timesteps, one checkpoint, then a restart.
	temperature, pressure, density, sim := figure2Arrays(t)
	cluster, err := NewCluster(Config{ComputeNodes: 4, IONodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(n *Node) error {
		for _, a := range sim.Arrays() {
			buf := make([]byte, n.ChunkBytes(a))
			fillChunk(buf, uint32(n.Rank()*1000))
			if err := n.Bind(a, buf); err != nil {
				return err
			}
		}
		for i := 0; i < 3; i++ {
			if err := n.Timestep(sim); err != nil {
				return err
			}
			if i == 1 {
				if err := n.Checkpoint(sim); err != nil {
					return err
				}
			}
		}
		if n.TimestepCount(sim) != 3 {
			return fmt.Errorf("timestep count %d", n.TimestepCount(sim))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Restart on the same cluster: fresh buffers restored from the
	// checkpoint.
	err = cluster.Run(func(n *Node) error {
		for _, a := range []*Array{temperature, pressure, density} {
			if err := n.Bind(a, make([]byte, n.ChunkBytes(a))); err != nil {
				return err
			}
		}
		if err := n.Restart(sim); err != nil {
			return err
		}
		for _, a := range sim.Arrays() {
			buf := make([]byte, n.ChunkBytes(a))
			fillChunk(buf, uint32(n.Rank()*1000))
			got, _, err := n.boundFor(a)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, buf) {
				return fmt.Errorf("node %d: %s restart mismatch", n.Rank(), a.Name())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// boundFor exposes bound buffers for test verification.
func (n *Node) boundFor(a *Array) ([]byte, int64, error) {
	buf, ok := n.data[a]
	if !ok {
		return nil, 0, fmt.Errorf("no buffer bound")
	}
	return buf, int64(len(buf)), nil
}

func TestWriteReadSingleArrayOnRealFiles(t *testing.T) {
	dir := t.TempDir()
	memory := NewLayout("mem", []int{2, 2})
	disk := NewLayout("disk", []int{3})
	a, err := NewArray("grid", []int{12, 8}, 8,
		memory, []Distribution{BLOCK, BLOCK},
		disk, []Distribution{BLOCK, NONE})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(Config{ComputeNodes: 4, IONodes: 3, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(func(n *Node) error {
		buf := make([]byte, n.ChunkBytes(a))
		fillChunk(buf, uint32(100+n.Rank()))
		if err := n.Bind(a, buf); err != nil {
			return err
		}
		return n.WriteArray(a)
	}); err != nil {
		t.Fatal(err)
	}
	// Files exist on the host FS.
	for i := 0; i < 3; i++ {
		name := filepath.Join(cluster.IONodeDir(i), fmt.Sprintf("grid.%d", i))
		if _, err := os.Stat(name); err != nil {
			t.Fatalf("expected file %s: %v", name, err)
		}
	}
	// A second cluster over the same directory reads it back.
	cluster2, err := NewCluster(Config{ComputeNodes: 4, IONodes: 3, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster2.Run(func(n *Node) error {
		buf := make([]byte, n.ChunkBytes(a))
		if err := n.Bind(a, buf); err != nil {
			return err
		}
		if err := n.ReadArray(a); err != nil {
			return err
		}
		return checkChunk(buf, uint32(100+n.Rank()))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatenationOnHostFS(t *testing.T) {
	// Traditional-order schema: cat ion0/x.0 ion1/x.1 equals the
	// row-major array.
	dir := t.TempDir()
	memory := NewLayout("mem", []int{4})
	disk := NewLayout("disk", []int{2})
	a, err := NewArray("x", []int{8, 4}, 4,
		memory, []Distribution{BLOCK, NONE},
		disk, []Distribution{BLOCK, NONE})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(Config{ComputeNodes: 4, IONodes: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(func(n *Node) error {
		buf := make([]byte, n.ChunkBytes(a))
		// Global row-major pattern: each node's chunk is rows
		// [rank*2, rank*2+2) of an 8x4 array.
		lo, _ := n.ChunkBounds(a)
		for i := 0; i+4 <= len(buf); i += 4 {
			global := lo[0]*4*4 + i
			binary.LittleEndian.PutUint32(buf[i:], uint32(global))
		}
		if err := n.Bind(a, buf); err != nil {
			return err
		}
		return n.WriteArray(a)
	}); err != nil {
		t.Fatal(err)
	}
	var concat []byte
	for i := 0; i < 2; i++ {
		b, err := os.ReadFile(filepath.Join(cluster.IONodeDir(i), fmt.Sprintf("x.%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		concat = append(concat, b...)
	}
	if len(concat) != 8*4*4 {
		t.Fatalf("concatenation holds %d bytes", len(concat))
	}
	for i := 0; i+4 <= len(concat); i += 4 {
		if got := binary.LittleEndian.Uint32(concat[i:]); got != uint32(i) {
			t.Fatalf("byte %d: %d, not traditional order", i, got)
		}
	}
}

func TestNewArrayValidation(t *testing.T) {
	mem := NewLayout("m", []int{2, 2})
	disk := NewLayout("d", []int{2})
	if _, err := NewArray("a", []int{8, 8}, 4, mem,
		[]Distribution{BLOCK, NONE}, disk, []Distribution{BLOCK, NONE}); err == nil {
		t.Fatal("BLOCK count / layout rank mismatch accepted")
	}
	if _, err := NewArray("a", []int{8, 8}, 4, mem,
		[]Distribution{BLOCK}, disk, []Distribution{BLOCK, NONE}); err == nil {
		t.Fatal("directive rank mismatch accepted")
	}
	if _, err := NewArray("a", []int{8, 8}, 4, nil,
		[]Distribution{BLOCK, BLOCK}, disk, []Distribution{BLOCK, NONE}); err == nil {
		t.Fatal("nil layout accepted")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{ComputeNodes: 0, IONodes: 1}); err == nil {
		t.Fatal("zero compute nodes accepted")
	}
	if _, err := NewCluster(Config{ComputeNodes: 1, IONodes: 0}); err == nil {
		t.Fatal("zero I/O nodes accepted")
	}
}

func TestUnboundArrayFails(t *testing.T) {
	mem := NewLayout("m", []int{2})
	disk := NewLayout("d", []int{1})
	a, _ := NewArray("u", []int{8}, 4, mem, []Distribution{BLOCK}, disk, []Distribution{BLOCK})
	cluster, _ := NewCluster(Config{ComputeNodes: 2, IONodes: 1})
	err := cluster.Run(func(n *Node) error { return n.WriteArray(a) })
	if err == nil {
		t.Fatal("write of unbound array succeeded")
	}
}

func TestBindRejectsWrongSize(t *testing.T) {
	mem := NewLayout("m", []int{2})
	disk := NewLayout("d", []int{1})
	a, _ := NewArray("w", []int{8}, 4, mem, []Distribution{BLOCK}, disk, []Distribution{BLOCK})
	cluster, _ := NewCluster(Config{ComputeNodes: 2, IONodes: 1})
	err := cluster.Run(func(n *Node) error {
		if err := n.Bind(a, make([]byte, 3)); err == nil {
			return fmt.Errorf("bad bind accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	mem := NewLayout("m", []int{2, 2})
	disk := NewLayout("d", []int{4})
	a, err := NewArray("acc", []int{8, 6}, 8, mem,
		[]Distribution{BLOCK, BLOCK}, disk, []Distribution{BLOCK, NONE})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "acc" || a.ElemSize() != 8 || a.TotalBytes() != 8*6*8 {
		t.Fatalf("accessors: %s %d %d", a.Name(), a.ElemSize(), a.TotalBytes())
	}
	if got := a.Size(); got[0] != 8 || got[1] != 6 {
		t.Fatalf("Size = %v", got)
	}
	if mem.Name() != "m" || mem.Size() != 4 || disk.Size() != 4 {
		t.Fatal("layout accessors")
	}
	g := NewGroup("g")
	g.Include(a)
	if g.Name() != "g" || len(g.Arrays()) != 1 {
		t.Fatal("group accessors")
	}
}

func TestSchemaFileAndAssemble(t *testing.T) {
	// Write a group with a non-traditional disk schema, save the
	// schema file, and reassemble an array with no cluster — the
	// sequential-consumer path behind cmd/pandacat.
	dir := t.TempDir()
	memory := NewLayout("m", []int{2, 2})
	disk := NewLayout("d", []int{2, 2}) // natural chunking: NOT trivially concatenable
	a, err := NewArray("field", []int{8, 12}, 4,
		memory, []Distribution{BLOCK, BLOCK},
		disk, []Distribution{BLOCK, BLOCK})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroup("sim")
	g.Include(a)
	cluster, err := NewCluster(Config{ComputeNodes: 4, IONodes: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	shape := []int{8, 12}
	if err := cluster.Run(func(n *Node) error {
		buf := make([]byte, n.ChunkBytes(a))
		lo, hi := n.ChunkBounds(a)
		i := 0
		for x := lo[0]; x < hi[0]; x++ {
			for y := lo[1]; y < hi[1]; y++ {
				binary.LittleEndian.PutUint32(buf[i:], uint32(x*shape[1]+y))
				i += 4
			}
		}
		if err := n.Bind(a, buf); err != nil {
			return err
		}
		return n.Write(g)
	}); err != nil {
		t.Fatal(err)
	}
	schemaPath := filepath.Join(dir, "sim.schema.json")
	if err := cluster.SaveSchema(g, schemaPath); err != nil {
		t.Fatal(err)
	}

	s, err := LoadSchema(schemaPath)
	if err != nil {
		t.Fatal(err)
	}
	if s.Group() != "sim" || s.IONodes() != 2 || len(s.ArrayNames()) != 1 || s.ArrayNames()[0] != "field" {
		t.Fatalf("schema header: %s %d %v", s.Group(), s.IONodes(), s.ArrayNames())
	}
	outPath := filepath.Join(dir, "field.raw")
	if err := AssembleArray(s, dir, "field", "", outPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8*12*4 {
		t.Fatalf("assembled %d bytes", len(data))
	}
	for i := 0; i+4 <= len(data); i += 4 {
		if got := binary.LittleEndian.Uint32(data[i:]); got != uint32(i/4) {
			t.Fatalf("element %d = %d: not row-major", i/4, got)
		}
	}
}

func TestLoadSchemaErrors(t *testing.T) {
	if _, err := LoadSchema(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing schema accepted")
	}
}
