package panda

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"panda/internal/clock"
	"panda/internal/core"
	"panda/internal/mpi"
)

// ErrSchemaMismatch reports an array opened under a schema whose
// fingerprint disagrees with the one the daemon's catalog recorded at
// creation. Match with errors.Is.
var ErrSchemaMismatch = core.ErrSchemaMismatch

// ErrUnknownArray reports an Open of an array the catalog has never
// heard of.
var ErrUnknownArray = core.ErrUnknownArray

// ErrDraining reports work refused because the daemon is shutting
// down gracefully.
var ErrDraining = core.ErrDraining

// ErrBusy reports scheduler admission backpressure (or a session
// refused because too few client slots are free).
var ErrBusy = core.ErrBusy

// ErrDaemonUnavailable reports a Dial that exhausted its connect budget
// without ever reaching a daemon. Match with errors.Is; the wrapped
// chain carries the last underlying dial error.
var ErrDaemonUnavailable = errors.New("panda: daemon unavailable")

// SessionConfig describes a client session to Dial.
type SessionConfig struct {
	// Addr is the daemon's address.
	Addr string
	// Nodes is the number of compute nodes this session contributes
	// (0 = 1). Every array the session operates on must have this many
	// memory chunks.
	Nodes int
	// Tenant names the scheduler tenant the session's operations are
	// attributed to; "" is the default tenant.
	Tenant string
	// DialBudget bounds the initial connect, retried with exponential
	// backoff and jitter — a daemon still coming up (or briefly
	// restarting) is reached on a later attempt instead of failing the
	// first. 0 means 5s; a negative budget tries exactly once. After
	// the budget Dial fails with ErrDaemonUnavailable.
	DialBudget time.Duration
}

// Session is a live attachment to a Panda service daemon: a group of
// compute nodes with assigned ranks, running collectives through the
// daemon's scheduler. Sessions come and go freely; the daemon, its
// catalog, and other tenants' sessions are undisturbed.
type Session struct {
	cfg     SessionConfig
	ccfg    core.Config
	id      int
	ranks   []int
	seqBase int

	mu      sync.Mutex
	ctrl    net.Conn
	dec     *json.Decoder
	enc     *json.Encoder
	members []*sessionMember
	closed  bool
}

// sessionMember is one compute node of the session, persistent across
// Run calls so bound buffers and operation sequencing carry over.
type sessionMember struct {
	comm mpi.Comm
	cl   *core.Client
	node *Node
}

// Dial connects to a daemon and attaches a session.
func Dial(cfg SessionConfig) (*Session, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 1
	}
	conn, err := dialRetry(cfg.Addr, cfg.DialBudget)
	if err != nil {
		return nil, err
	}
	if err := mpi.SessionHello(conn); err != nil {
		conn.Close()
		return nil, err
	}
	s := &Session{
		cfg:  cfg,
		ctrl: conn,
		dec:  json.NewDecoder(conn),
		enc:  json.NewEncoder(conn),
	}
	rep, err := s.rpc(ctlRequest{Cmd: "attach", Nodes: cfg.Nodes, Tenant: cfg.Tenant})
	if err != nil {
		conn.Close()
		return nil, err
	}
	s.id = rep.Session
	s.ranks = rep.Ranks
	s.seqBase = rep.SeqBase
	// Reconstruct the deployment view a member needs: the world shape
	// (rank arithmetic and tags), the transfer tuning, and a scheduler-
	// enabled flag so collectives take the submit path the service
	// requires.
	s.ccfg = core.Config{
		NumClients:    rep.Clients,
		NumServers:    rep.Servers,
		SubchunkBytes: rep.Subchunk,
		OpTimeout:     time.Duration(rep.OpTimeoutNs),
		PullRetries:   rep.PullRetries,
		Service:       true,
		Sched:         core.SchedConfig{MaxInflight: rep.MaxInflight},
	}
	return s, nil
}

// dialRetry connects to a daemon, retrying refused or timed-out
// attempts with exponential backoff (25ms doubling to 500ms, each wait
// jittered up to +50%) until the budget runs out, then reports
// ErrDaemonUnavailable wrapping the last attempt's error.
func dialRetry(addr string, budget time.Duration) (net.Conn, error) {
	if budget == 0 {
		budget = 5 * time.Second
	}
	deadline := time.Now().Add(budget)
	backoff := 25 * time.Millisecond
	for attempt := 0; ; attempt++ {
		perTry := time.Until(deadline)
		if perTry < 250*time.Millisecond {
			perTry = 250 * time.Millisecond
		}
		conn, err := net.DialTimeout("tcp", addr, perTry)
		if err == nil {
			return conn, nil
		}
		wait := backoff + time.Duration(rand.Int63n(int64(backoff/2)+1))
		if time.Now().Add(wait).After(deadline) {
			return nil, fmt.Errorf("panda: dial %s: %d attempts: %v: %w", addr, attempt+1, err, ErrDaemonUnavailable)
		}
		time.Sleep(wait)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// rpc runs one control request/reply exchange under s.mu.
func (s *Session) rpc(req ctlRequest) (ctlReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ctlReply{}, fmt.Errorf("panda: session closed")
	}
	if err := s.enc.Encode(req); err != nil {
		return ctlReply{}, fmt.Errorf("panda: session control: %w", err)
	}
	var rep ctlReply
	if err := s.dec.Decode(&rep); err != nil {
		return ctlReply{}, fmt.Errorf("panda: session control: %w", err)
	}
	if !rep.OK {
		return rep, errFromCode(rep.Code, rep.Error)
	}
	return rep, nil
}

// ID returns the daemon-assigned session identifier.
func (s *Session) ID() int { return s.id }

// Ranks returns the world ranks assigned to the session's nodes.
func (s *Session) Ranks() []int { return append([]int(nil), s.ranks...) }

// Create registers a (or validates, if the name already exists) in the
// daemon's catalog under a's schema. Creating an existing array with a
// different schema fails with ErrSchemaMismatch.
func (s *Session) Create(a *Array) error {
	_, err := s.rpc(ctlRequest{Cmd: "open", Name: a.name, Spec: core.EncodeSpec(a.spec), Create: true})
	return err
}

// Open resolves an existing array by name, returning a declaration
// carrying the exact schema recorded at creation — a session can read
// an array created by a long-gone session without re-declaring its
// decomposition. Fails with ErrUnknownArray for uncatalogued names.
func (s *Session) Open(name string) (*Array, error) {
	rep, err := s.rpc(ctlRequest{Cmd: "open", Name: name})
	if err != nil {
		return nil, err
	}
	spec, err := core.DecodeSpec(rep.Spec)
	if err != nil {
		return nil, fmt.Errorf("panda: open %s: %w", name, err)
	}
	return &Array{name: spec.Name, spec: spec}, nil
}

// ServiceInfo is a daemon status snapshot.
type ServiceInfo struct {
	// MaxInflight, QueueDepth, Weights, Pipeline and ReadAhead mirror
	// the daemon's current (possibly reloaded) tuning.
	MaxInflight int
	QueueDepth  int
	Weights     map[string]int
	Pipeline    int
	ReadAhead   int
	// Sessions is the number of currently attached sessions; Arrays
	// the catalog size.
	Sessions int
	Arrays   int
	// Metrics is the daemon's metrics registry as generic JSON
	// (counters include the per-tenant tenant_ops_* / tenant_bytes_*
	// attribution).
	Metrics map[string]any
}

// Info fetches the daemon's current tuning and metrics.
func (s *Session) Info() (ServiceInfo, error) {
	rep, err := s.rpc(ctlRequest{Cmd: "info"})
	if err != nil {
		return ServiceInfo{}, err
	}
	info := ServiceInfo{
		MaxInflight: rep.MaxInflight,
		QueueDepth:  rep.QueueDepth,
		Weights:     rep.Weights,
		Pipeline:    rep.Pipeline,
		ReadAhead:   rep.ReadAhead,
		Sessions:    rep.Sessions,
		Arrays:      rep.Arrays,
	}
	if len(rep.Metrics) > 0 {
		_ = json.Unmarshal(rep.Metrics, &info.Metrics)
	}
	return info, nil
}

// dialMembers joins the session's nodes to the daemon's rank mesh.
// Called once, lazily, under s.mu.
func (s *Session) dialMembers() error {
	clk := clock.NewReal()
	for i, rank := range s.ranks {
		comm, err := mpi.DialComm(s.cfg.Addr, rank, s.ccfg.WorldSize())
		if err != nil {
			return fmt.Errorf("panda: session node %d: %w", i, err)
		}
		cl, err := core.NewSessionClient(s.ccfg, comm, clk, s.ranks, i, s.seqBase)
		if err != nil {
			mpi.CloseComm(comm) //nolint:errcheck
			return err
		}
		cl.SetTenant(s.cfg.Tenant)
		s.members = append(s.members, &sessionMember{
			comm: comm,
			cl:   cl,
			node: &Node{cl: cl, data: make(map[*Array][]byte), steps: make(map[*Group]int)},
		})
	}
	return nil
}

// Run executes app once on every node of the session, exactly like
// Cluster.Run but against the shared daemon: node i holds memory chunk
// i of every array. Nodes persist across Run calls — buffers stay
// bound, timestep counters advance — and the daemon keeps serving
// other sessions throughout. app must follow the SPMD rules.
func (s *Session) Run(app func(n *Node) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("panda: session closed")
	}
	if s.members == nil {
		if err := s.dialMembers(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	members := s.members
	s.mu.Unlock()

	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *sessionMember) {
			defer wg.Done()
			errs[i] = app(m.node)
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close detaches the session: outstanding work is finished, the nodes
// leave the rank mesh, and the daemon frees the session's client
// slots. The daemon and other sessions keep running.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	members := s.members
	s.members = nil
	enc := s.enc
	s.mu.Unlock()

	for _, m := range members {
		m.cl.Shutdown()
	}
	for _, m := range members {
		mpi.CloseComm(m.comm) //nolint:errcheck
	}
	// Best-effort explicit detach; closing the control connection
	// detaches implicitly anyway.
	_ = enc.Encode(ctlRequest{Cmd: "detach"})
	return s.ctrl.Close()
}
