package panda

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"panda/internal/obs"
)

// startTelemetryDaemon runs a daemon with the HTTP plane bound to an
// ephemeral port.
func startTelemetryDaemon(t *testing.T, dir string, tuning Tuning) *Daemon {
	t.Helper()
	d, err := StartDaemon(DaemonConfig{
		Dir:         dir,
		ClientSlots: 8,
		IONodes:     2,
		OpTimeout:   30 * time.Second,
		Tuning:      tuning,
		HTTPAddr:    "127.0.0.1:0",
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("StartDaemon: %v", err)
	}
	return d
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, b
}

// eventsOf filters the daemon's event log by type.
func eventsOf(t *testing.T, dir, typ string) []map[string]any {
	t.Helper()
	all, err := obs.ReadEventLog(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		t.Fatalf("ReadEventLog: %v", err)
	}
	var out []map[string]any
	for _, e := range all {
		if e["event"] == typ {
			out = append(out, e)
		}
	}
	return out
}

// TestDaemonSLOReloadUnderLoad is the PR's acceptance scenario: a
// tenant writes timesteps with no objective set, the operator SIGHUPs
// in a 1ms objective mid-load, and every completion thereafter is a
// violation — counted, logged with the right sid and tenant, visible
// over /metrics, and answered with a flight-recorder dump — while the
// workload itself never fails an operation.
func TestDaemonSLOReloadUnderLoad(t *testing.T) {
	dir := t.TempDir()
	d := startTelemetryDaemon(t, dir, Tuning{MaxInflight: 2})
	defer d.Drain() //nolint:errcheck

	s, err := Dial(SessionConfig{Addr: d.Addr(), Nodes: 1, Tenant: "sim"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck
	sid := s.ID()
	a := sessionArray(t, "SLO", 1)
	if err := s.Create(a); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- s.Run(func(n *Node) error {
			buf := make([]byte, n.ChunkBytes(a))
			if err := n.Bind(a, buf); err != nil {
				return err
			}
			g := NewGroup("w")
			g.Include(a)
			for i := 0; i < 30; i++ {
				fillPattern(buf, int64(i))
				if err := n.Timestep(g); err != nil {
					return fmt.Errorf("timestep %d: %w", i, err)
				}
			}
			return nil
		})
	}()
	time.Sleep(50 * time.Millisecond)
	// The reload that tightens the screw: a 1ms objective that a real
	// disk write cannot meet.
	d.Reload(Tuning{MaxInflight: 2, SLOms: map[string]int64{"sim": 1}})
	if err := <-done; err != nil {
		t.Fatalf("writes failed across SLO reload: %v", err)
	}

	// The workload itself stayed healthy: violations are observations,
	// not failures.
	var row *SessionStat
	for _, r := range d.Sessions() {
		if r.SID == sid {
			row = &r
			break
		}
	}
	if row == nil {
		t.Fatalf("session %d missing from live table: %+v", sid, d.Sessions())
	}
	if row.FailedOps != 0 {
		t.Fatalf("SLO violations must not fail ops: %d failed", row.FailedOps)
	}
	if row.Ops == 0 || row.Bytes == 0 {
		t.Fatalf("session table did not account the workload: %+v", *row)
	}

	st := d.SLOStatus()
	if st.Violations == 0 {
		t.Fatal("no SLO violations counted after tightening the objective to 1ms under load")
	}
	if len(st.Recent) == 0 {
		t.Fatal("no recent violations recorded")
	}
	for _, v := range st.Recent {
		if v.Tenant != "sim" || v.SID != sid {
			t.Fatalf("violation misattributed: %+v (want tenant=sim sid=%d)", v, sid)
		}
		if v.ObjectiveMs != 1 || v.ElapsedMs < 1 {
			t.Fatalf("violation timings wrong: %+v", v)
		}
	}

	// The structured event log carries the same finding.
	evs := eventsOf(t, dir, "slo_violation")
	if len(evs) == 0 {
		t.Fatal("no slo_violation event in events.jsonl")
	}
	if got := evs[0]["tenant"]; got != "sim" {
		t.Fatalf("violation event tenant = %v, want sim", got)
	}
	if got := evs[0]["sid"]; got != float64(sid) {
		t.Fatalf("violation event sid = %v, want %d", got, sid)
	}

	// The counter is scrapeable over the HTTP plane.
	code, body := httpGet(t, "http://"+d.HTTPAddr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	var metrics map[string]json.RawMessage
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	var violations int64
	if err := json.Unmarshal(metrics["slo_violations"], &violations); err != nil || violations == 0 {
		t.Fatalf("slo_violations not scrapeable: %s (err %v)", metrics["slo_violations"], err)
	}

	// The violation triggered a flight-recorder dump, and the dump is a
	// valid Chrome trace. The dump runs asynchronously; wait it out.
	var dumps []string
	for wait := 0; wait < 100; wait++ {
		dumps, _ = filepath.Glob(filepath.Join(dir, "trace-*.json"))
		if len(dumps) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(dumps) == 0 {
		t.Fatal("violation did not dump the flight recorder")
	}
	raw, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ParseChromeTrace(raw)
	if err != nil {
		t.Fatalf("dumped trace invalid: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("dumped trace is empty")
	}
}

// TestDaemonHTTPPlane walks every telemetry endpoint against a live
// daemon with one attached session.
func TestDaemonHTTPPlane(t *testing.T) {
	dir := t.TempDir()
	d := startTelemetryDaemon(t, dir, Tuning{MaxInflight: 2, SLODefaultMs: 30_000})
	base := "http://" + d.HTTPAddr()

	s, err := Dial(SessionConfig{Addr: d.Addr(), Nodes: 2, Tenant: "viz"})
	if err != nil {
		t.Fatal(err)
	}
	a := sessionArray(t, "H", 2)
	if err := s.Create(a); err != nil {
		t.Fatal(err)
	}
	err = s.Run(func(n *Node) error {
		buf := make([]byte, n.ChunkBytes(a))
		fillPattern(buf, int64(n.Rank()))
		if err := n.Bind(a, buf); err != nil {
			return err
		}
		return n.WriteArray(a)
	})
	if err != nil {
		t.Fatal(err)
	}

	if code, body := httpGet(t, base+"/healthz"); code != 200 || string(body) != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := httpGet(t, base+"/readyz"); code != 200 || string(body) != "ready\n" {
		t.Fatalf("/readyz: %d %q", code, body)
	}

	var sessions struct {
		Sessions []SessionStat `json:"sessions"`
	}
	code, body := httpGet(t, base+"/sessions")
	if code != 200 {
		t.Fatalf("/sessions: status %d", code)
	}
	if err := json.Unmarshal(body, &sessions); err != nil {
		t.Fatalf("/sessions not JSON: %v", err)
	}
	if len(sessions.Sessions) != 1 {
		t.Fatalf("/sessions rows = %d, want 1: %s", len(sessions.Sessions), body)
	}
	row := sessions.Sessions[0]
	if row.SID != s.ID() || row.Tenant != "viz" || row.Nodes != 2 || row.Ops == 0 || row.Bytes == 0 {
		t.Fatalf("/sessions row wrong: %+v", row)
	}

	var slo SLOStatus
	code, body = httpGet(t, base+"/slo")
	if code != 200 {
		t.Fatalf("/slo: status %d", code)
	}
	if err := json.Unmarshal(body, &slo); err != nil {
		t.Fatalf("/slo not JSON: %v", err)
	}
	if slo.DefaultMs != 30_000 || slo.Violations != 0 {
		t.Fatalf("/slo wrong: %+v", slo)
	}

	var metrics map[string]json.RawMessage
	code, body = httpGet(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: status %d", code)
	}
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	var attached int64
	if err := json.Unmarshal(metrics["sessions_attached"], &attached); err != nil || attached != 1 {
		t.Fatalf("sessions_attached = %s, want 1 (err %v)", metrics["sessions_attached"], err)
	}
	name := obs.LabelName("session_inflight", "sid", fmt.Sprint(s.ID()))
	if _, ok := metrics[name]; !ok {
		t.Fatalf("per-session gauge %q missing from /metrics", name)
	}

	// /status (the obs page) shows serving state and scheduler line.
	code, body = httpGet(t, base+"/status")
	if code != 200 {
		t.Fatalf("/status: status %d", code)
	}
	for _, want := range []string{"state: serving", "scheduler:", "sessions (1):"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/status missing %q:\n%s", want, body)
		}
	}

	// Detach retires the session's row and gauge. Close's detach is
	// asynchronous (closing the control connection detaches), so poll.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	retired := false
	for wait := 0; wait < 100 && !retired; wait++ {
		_, body = httpGet(t, base+"/sessions")
		if err := json.Unmarshal(body, &sessions); err != nil {
			t.Fatal(err)
		}
		retired = len(sessions.Sessions) == 0
		if !retired {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !retired {
		t.Fatalf("sessions not retired after close: %s", body)
	}
	_, body = httpGet(t, base+"/metrics")
	metrics = nil // Unmarshal merges into a non-empty map; start fresh
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatal(err)
	}
	if _, ok := metrics[name]; ok {
		t.Fatalf("per-session gauge %q survived detach", name)
	}

	if err := d.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Lifecycle events all landed, in order of first occurrence.
	for _, typ := range []string{"startup", "attach", "open", "detach", "drain", "drained"} {
		if len(eventsOf(t, dir, typ)) == 0 {
			t.Fatalf("no %q event in events.jsonl", typ)
		}
	}
	att := eventsOf(t, dir, "attach")[0]
	if att["tenant"] != "viz" || att["sid"] != float64(s.ID()) {
		t.Fatalf("attach event wrong: %v", att)
	}
	op := eventsOf(t, dir, "open")[0]
	if op["array"] != "H" || op["create"] != true {
		t.Fatalf("open event wrong: %v", op)
	}
	st := eventsOf(t, dir, "startup")[0]
	if st["addr"] != d.Addr() || st["http_addr"] != d.HTTPAddr() {
		t.Fatalf("startup event wrong: %v", st)
	}
}

// TestDaemonDumpEndpoint exercises operator-requested dumps: /dump
// writes a valid trace and logs a dump event; repeated requests are
// not rate-limited.
func TestDaemonDumpEndpoint(t *testing.T) {
	dir := t.TempDir()
	d := startTelemetryDaemon(t, dir, Tuning{})
	defer d.Drain() //nolint:errcheck
	base := "http://" + d.HTTPAddr()

	// Before any spans exist a dump is refused, not written empty.
	if code, _ := httpGet(t, base+"/dump"); code == http.StatusOK {
		t.Fatal("/dump succeeded with an empty flight recorder")
	}

	s, err := Dial(SessionConfig{Addr: d.Addr(), Nodes: 1, Tenant: "ops"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck
	a := sessionArray(t, "D", 1)
	if err := s.Create(a); err != nil {
		t.Fatal(err)
	}
	err = s.Run(func(n *Node) error {
		buf := make([]byte, n.ChunkBytes(a))
		if err := n.Bind(a, buf); err != nil {
			return err
		}
		return n.WriteArray(a)
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		code, body := httpGet(t, base+"/dump")
		if code != http.StatusOK {
			t.Fatalf("/dump #%d: status %d: %s", i, code, body)
		}
		var rep struct {
			Path string `json:"path"`
		}
		if err := json.Unmarshal(body, &rep); err != nil || rep.Path == "" {
			t.Fatalf("/dump reply bad: %s (err %v)", body, err)
		}
		raw, err := os.ReadFile(rep.Path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := obs.ParseChromeTrace(raw); err != nil {
			t.Fatalf("dump #%d invalid: %v", i, err)
		}
	}
	if evs := eventsOf(t, dir, "dump"); len(evs) != 2 {
		t.Fatalf("dump events = %d, want 2", len(evs))
	}
}
