#!/usr/bin/env bash
# daemon_smoke.sh — black-box smoke of the pandad service daemon:
# start it over a fresh catalog directory with the telemetry plane up,
# write an array from one client process, read it back bit-exact from
# a second, probe every telemetry endpoint (/healthz, /metrics,
# /sessions, /slo, /dump) plus pandastat -check mid-run, reload the
# tuning via SIGHUP, join an elastic I/O node mid-run and drain it back
# out with its data migrated off, drain via SIGTERM, and fsck the
# directory.
# Gates on every exit status plus the fsck verdict and the validity of
# the dumped flight-recorder trace. Artifacts (daemon log, catalog/data
# directory, structured event log, dumped trace) land in
# $DAEMON_SMOKE_OUT (default ./daemon-artifacts) for CI upload.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${DAEMON_SMOKE_OUT:-daemon-artifacts}
rm -rf "$OUT"
mkdir -p "$OUT"
DATA="$OUT/data"
LOG="$OUT/pandad.log"
CFG="$OUT/tuning.json"
ADDRFILE="$OUT/addr"
HTTPADDRFILE="$OUT/http-addr"

go build -o "$OUT/pandad" ./cmd/pandad
go build -o "$OUT/pandanode" ./cmd/pandanode
go build -o "$OUT/pandafsck" ./cmd/pandafsck
go build -o "$OUT/pandastat" ./cmd/pandastat
go build -o "$OUT/pandatrace" ./cmd/pandatrace

echo '{"max_inflight": 2, "pipeline": 2, "slo_default_ms": 30000}' >"$CFG"
"$OUT/pandad" -addr 127.0.0.1:0 -dir "$DATA" -config "$CFG" -addr-file "$ADDRFILE" \
  -max-ions 4 -http 127.0.0.1:0 -http-addr-file "$HTTPADDRFILE" >"$LOG" 2>&1 &
PID=$!
JPID=""
trap 'kill -9 "$PID" $JPID 2>/dev/null || true' EXIT

for _ in $(seq 100); do [ -s "$ADDRFILE" ] && [ -s "$HTTPADDRFILE" ] && break; sleep 0.1; done
[ -s "$ADDRFILE" ] || { echo "daemon never published its address"; cat "$LOG"; exit 1; }
[ -s "$HTTPADDRFILE" ] || { echo "daemon never published its telemetry address"; cat "$LOG"; exit 1; }
ADDR=$(cat "$ADDRFILE")
HTTP=$(cat "$HTTPADDRFILE")
echo "daemon on $ADDR, telemetry on $HTTP (pid $PID)"

# The startup line is structured JSON, not prose.
grep -q 'startup {"addr"' "$LOG" || { echo "no structured startup line"; cat "$LOG"; exit 1; }

# Client A writes; a separate client process B reads it back bit-exact
# knowing only the array's name — the catalog supplies the schema.
"$OUT/pandad" -connect "$ADDR" -smoke write -array smoke -nodes 2 -tenant a
"$OUT/pandad" -connect "$ADDR" -smoke read -array smoke -nodes 2 -tenant b

# Telemetry plane, mid-run: health, readiness, metrics, sessions, SLO.
curl -fsS "http://$HTTP/healthz" | grep -q ok || { echo "/healthz not ok"; exit 1; }
curl -fsS "http://$HTTP/readyz" | grep -q ready || { echo "/readyz not ready"; exit 1; }
curl -fsS "http://$HTTP/metrics" | grep -q '"sessions_attached"' \
  || { echo "/metrics missing sessions_attached"; exit 1; }
curl -fsS "http://$HTTP/metrics" | grep -q '"tenant_ops_a"' \
  || { echo "/metrics missing tenant attribution"; exit 1; }
curl -fsS "http://$HTTP/sessions" | grep -q '"sessions"' || { echo "/sessions malformed"; exit 1; }
curl -fsS "http://$HTTP/slo" | grep -q '"default_ms": 30000' \
  || { echo "/slo missing the configured objective"; curl -fsS "http://$HTTP/slo"; exit 1; }
echo "telemetry endpoints OK"

# Operator-requested flight-recorder dump; the trace must validate.
DUMP=$(curl -fsS "http://$HTTP/dump" | sed -n 's/.*"path": "\(.*\)".*/\1/p')
[ -s "$DUMP" ] || { echo "/dump produced no trace"; cat "$LOG"; exit 1; }
"$OUT/pandatrace" -check "$DUMP"
cp "$DUMP" "$OUT/trace-dump.json"
echo "flight-recorder dump OK ($DUMP)"

# The CLI agrees the daemon is healthy.
"$OUT/pandastat" -addr "$HTTP" -check
"$OUT/pandastat" -addr "$HTTP" >"$OUT/pandastat.txt"

# Live reload: rewrite the config, SIGHUP, and require the new knobs
# to become observable through info.
echo '{"max_inflight": 4, "weights": {"a": 7}, "pipeline": 1, "slo_default_ms": 30000}' >"$CFG"
kill -HUP "$PID"
INFO=""
for _ in $(seq 100); do
  INFO=$("$OUT/pandad" -connect "$ADDR" -smoke info)
  echo "$INFO" | grep -q '"MaxInflight": 4' && break
  sleep 0.1
done
echo "$INFO" | grep -q '"MaxInflight": 4' || { echo "reload not observed"; echo "$INFO"; cat "$LOG"; exit 1; }
echo "reload observed (max_inflight 2 -> 4)"

# The reloaded daemon still serves collectives.
"$OUT/pandad" -connect "$ADDR" -smoke write -array smoke2 -nodes 2 -tenant a
"$OUT/pandad" -connect "$ADDR" -smoke read -array smoke2 -nodes 2 -tenant a

# Elastic pool: a new I/O node joins the running daemon mid-run, the
# committed arrays rebalance onto it, and both still read back
# bit-exact; then an operator drain migrates its chunks off and the
# joined process exits 0.
"$OUT/pandanode" -join "$ADDR" -dir "$OUT/join1" >"$OUT/join1.log" 2>&1 &
JPID=$!
for _ in $(seq 100); do
  curl -fsS "http://$HTTP/servers" | grep -q '"active": 3' && break
  sleep 0.1
done
curl -fsS "http://$HTTP/servers" | grep -q '"active": 3' \
  || { echo "joined node never became active"; curl -fsS "http://$HTTP/servers"; cat "$OUT/join1.log"; exit 1; }
"$OUT/pandastat" -addr "$HTTP" servers >"$OUT/pandastat-servers.txt"
"$OUT/pandad" -connect "$ADDR" -smoke read -array smoke -nodes 2 -tenant b
"$OUT/pandad" -connect "$ADDR" -smoke read -array smoke2 -nodes 2 -tenant a
echo "elastic join OK (pool of 3)"

"$OUT/pandastat" -addr "$HTTP" drain-server 2
wait "$JPID" || { echo "joined node exited dirty after drain"; cat "$OUT/join1.log"; exit 1; }
JPID=""
"$OUT/pandad" -connect "$ADDR" -smoke read -array smoke -nodes 2 -tenant b
"$OUT/pandad" -connect "$ADDR" -smoke read -array smoke2 -nodes 2 -tenant a
"$OUT/pandafsck" -v "$OUT/join1"
echo "elastic drain OK (slot released, data migrated off)"

# Graceful drain: SIGTERM must finish in-flight work, commit, and
# exit 0.
kill -TERM "$PID"
wait "$PID"
trap - EXIT

# fsck gate over what the daemon left behind.
"$OUT/pandafsck" -v "$DATA"
grep -q "drained" "$LOG" || { echo "daemon did not report a drain"; cat "$LOG"; exit 1; }

# The structured event log must carry the full lifecycle.
EVENTS="$DATA/events.jsonl"
[ -s "$EVENTS" ] || { echo "no events.jsonl"; exit 1; }
for ev in startup attach open detach reconfigure dump drain drained \
  server_join server_drain server_left rebalance_start rebalance_done; do
  grep -q "\"event\":\"$ev\"" "$EVENTS" \
    || { echo "event log missing $ev"; cat "$EVENTS"; exit 1; }
done
cp "$EVENTS" "$OUT/events.jsonl"
echo "event log OK ($(wc -l <"$EVENTS") events)"
echo "daemon smoke OK"
