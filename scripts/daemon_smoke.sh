#!/usr/bin/env bash
# daemon_smoke.sh — black-box smoke of the pandad service daemon:
# start it over a fresh catalog directory, write an array from one
# client process, read it back bit-exact from a second, reload the
# tuning via SIGHUP, drain via SIGTERM, and fsck the directory.
# Gates on every exit status plus the fsck verdict. Artifacts (daemon
# log + catalog/data directory) land in $DAEMON_SMOKE_OUT (default
# ./daemon-artifacts) for CI upload.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${DAEMON_SMOKE_OUT:-daemon-artifacts}
rm -rf "$OUT"
mkdir -p "$OUT"
DATA="$OUT/data"
LOG="$OUT/pandad.log"
CFG="$OUT/tuning.json"
ADDRFILE="$OUT/addr"

go build -o "$OUT/pandad" ./cmd/pandad
go build -o "$OUT/pandafsck" ./cmd/pandafsck

echo '{"max_inflight": 2, "pipeline": 2}' >"$CFG"
"$OUT/pandad" -addr 127.0.0.1:0 -dir "$DATA" -config "$CFG" -addr-file "$ADDRFILE" >"$LOG" 2>&1 &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true' EXIT

for _ in $(seq 100); do [ -s "$ADDRFILE" ] && break; sleep 0.1; done
[ -s "$ADDRFILE" ] || { echo "daemon never published its address"; cat "$LOG"; exit 1; }
ADDR=$(cat "$ADDRFILE")
echo "daemon on $ADDR (pid $PID)"

# Client A writes; a separate client process B reads it back bit-exact
# knowing only the array's name — the catalog supplies the schema.
"$OUT/pandad" -connect "$ADDR" -smoke write -array smoke -nodes 2 -tenant a
"$OUT/pandad" -connect "$ADDR" -smoke read -array smoke -nodes 2 -tenant b

# Live reload: rewrite the config, SIGHUP, and require the new knobs
# to become observable through info.
echo '{"max_inflight": 4, "weights": {"a": 7}, "pipeline": 1}' >"$CFG"
kill -HUP "$PID"
INFO=""
for _ in $(seq 100); do
  INFO=$("$OUT/pandad" -connect "$ADDR" -smoke info)
  echo "$INFO" | grep -q '"MaxInflight": 4' && break
  sleep 0.1
done
echo "$INFO" | grep -q '"MaxInflight": 4' || { echo "reload not observed"; echo "$INFO"; cat "$LOG"; exit 1; }
echo "reload observed (max_inflight 2 -> 4)"

# The reloaded daemon still serves collectives.
"$OUT/pandad" -connect "$ADDR" -smoke write -array smoke2 -nodes 2 -tenant a
"$OUT/pandad" -connect "$ADDR" -smoke read -array smoke2 -nodes 2 -tenant a

# Graceful drain: SIGTERM must finish in-flight work, commit, and
# exit 0.
kill -TERM "$PID"
wait "$PID"
trap - EXIT

# fsck gate over what the daemon left behind.
"$OUT/pandafsck" -v "$DATA"
grep -q "drained" "$LOG" || { echo "daemon did not report a drain"; cat "$LOG"; exit 1; }
echo "daemon smoke OK"
