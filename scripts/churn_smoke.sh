#!/usr/bin/env bash
# churn_smoke.sh — black-box churn battery for the elastic server pool:
# a pandad daemon with spare pool capacity takes two runtime joiners
# (pandanode -join), one is SIGKILLed and must be declared lost by its
# lease, the arrays are rewritten around the corpse and read back
# bit-exact, the surviving joiner is drained out with its data migrated
# off, and the daemon exits through a clean SIGTERM drain with every
# directory — including the dead node's — passing pandafsck. The full
# membership story must land in events.jsonl. Artifacts go to
# $CHURN_SMOKE_OUT (default ./churn-artifacts) for CI upload.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${CHURN_SMOKE_OUT:-churn-artifacts}
rm -rf "$OUT"
mkdir -p "$OUT"
DATA="$OUT/data"
LOG="$OUT/pandad.log"
ADDRFILE="$OUT/addr"
HTTPADDRFILE="$OUT/http-addr"

go build -o "$OUT/pandad" ./cmd/pandad
go build -o "$OUT/pandanode" ./cmd/pandanode
go build -o "$OUT/pandafsck" ./cmd/pandafsck
go build -o "$OUT/pandastat" ./cmd/pandastat

# Short lease so the SIGKILL below is detected in seconds.
"$OUT/pandad" -addr 127.0.0.1:0 -dir "$DATA" -addr-file "$ADDRFILE" \
  -max-ions 5 -lease 2s -heartbeat 500ms \
  -http 127.0.0.1:0 -http-addr-file "$HTTPADDRFILE" >"$LOG" 2>&1 &
PID=$!
J1PID=""
J2PID=""
trap 'kill -9 "$PID" $J1PID $J2PID 2>/dev/null || true' EXIT

for _ in $(seq 100); do [ -s "$ADDRFILE" ] && [ -s "$HTTPADDRFILE" ] && break; sleep 0.1; done
[ -s "$ADDRFILE" ] || { echo "daemon never published its address"; cat "$LOG"; exit 1; }
ADDR=$(cat "$ADDRFILE")
HTTP=$(cat "$HTTPADDRFILE")
echo "daemon on $ADDR, telemetry on $HTTP (pid $PID)"

pool() { curl -fsS "http://$HTTP/servers"; }
wait_pool() { # wait_pool PATTERN DESCRIPTION
  for _ in $(seq 100); do pool | grep -q "$1" && return 0; sleep 0.2; done
  echo "pool never reached: $2"; pool; cat "$LOG"; exit 1
}

"$OUT/pandad" -connect "$ADDR" -smoke write -array c1 -nodes 2 -seed 11
"$OUT/pandad" -connect "$ADDR" -smoke write -array c2 -nodes 2 -seed 12

# Joiner 1: the pool grows to 3 and pre-join data survives.
"$OUT/pandanode" -join "$ADDR" -dir "$OUT/join1" >"$OUT/join1.log" 2>&1 &
J1PID=$!
wait_pool '"active": 3' "joiner 1 active"
"$OUT/pandad" -connect "$ADDR" -smoke read -array c1 -nodes 2 -seed 11
"$OUT/pandad" -connect "$ADDR" -smoke read -array c2 -nodes 2 -seed 12
echo "join 1 OK (pool of 3)"

# Joiner 2, then SIGKILL it: the lease must declare the slot lost.
"$OUT/pandanode" -join "$ADDR" -dir "$OUT/join2" >"$OUT/join2.log" 2>&1 &
J2PID=$!
wait_pool '"active": 4' "joiner 2 active"
kill -9 "$J2PID"
wait "$J2PID" 2>/dev/null || true
J2PID=""
wait_pool '"state": "lost"' "SIGKILLed joiner declared lost"
echo "loss detected via lease expiry"

# Rewrite around the corpse and verify; the dead slot is planned out.
"$OUT/pandad" -connect "$ADDR" -smoke write -array c1 -nodes 2 -seed 21
"$OUT/pandad" -connect "$ADDR" -smoke write -array c2 -nodes 2 -seed 22
"$OUT/pandad" -connect "$ADDR" -smoke read -array c1 -nodes 2 -seed 21
"$OUT/pandad" -connect "$ADDR" -smoke read -array c2 -nodes 2 -seed 22
echo "rewrite around the lost node OK"

# Drain joiner 1 (slot 2: first vacancy above the two residents): its
# chunks migrate off first and the process exits 0.
"$OUT/pandastat" -addr "$HTTP" drain-server 2 >"$OUT/pandastat-drain.txt"
wait "$J1PID" || { echo "drained node exited dirty"; cat "$OUT/join1.log"; exit 1; }
J1PID=""
"$OUT/pandad" -connect "$ADDR" -smoke read -array c1 -nodes 2 -seed 21
"$OUT/pandad" -connect "$ADDR" -smoke read -array c2 -nodes 2 -seed 22
wait_pool '"active": 2' "pool back to the residents"
# No leaked leases: every surviving row is pinned (lease_ms -1).
if pool | grep -q '"lease_ms": [0-9]'; then
  echo "leaked lease after churn"; pool; exit 1
fi
echo "drain OK (pool back to 2, no leases)"

# Graceful daemon exit, then fsck every directory the churn touched —
# the killed node's may hold warn-level debris, never a broken commit.
kill -TERM "$PID"
wait "$PID"
trap - EXIT
"$OUT/pandafsck" -v "$DATA"
"$OUT/pandafsck" -v "$OUT/join1"
"$OUT/pandafsck" -v "$OUT/join2"

EVENTS="$DATA/events.jsonl"
cp "$EVENTS" "$OUT/events.jsonl"
for ev in server_join server_drain server_left server_lost rebalance_start rebalance_done; do
  grep -q "\"event\":\"$ev\"" "$EVENTS" \
    || { echo "event log missing $ev"; cat "$EVENTS"; exit 1; }
done
echo "membership event log OK"
echo "churn smoke OK"
