package panda

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"panda/internal/core"
	"panda/internal/storage"
)

// startElasticDaemon runs a daemon with spare pool capacity and the
// telemetry plane bound, so tests can join and drain I/O nodes.
func startElasticDaemon(t *testing.T, dir string, maxIons int, lease, heartbeat time.Duration) *Daemon {
	t.Helper()
	d, err := StartDaemon(DaemonConfig{
		Dir:             dir,
		ClientSlots:     8,
		IONodes:         2,
		MaxIONodes:      maxIons,
		LeaseTTL:        lease,
		HeartbeatEvery:  heartbeat,
		MigrateParallel: 2,
		OpTimeout:       20 * time.Second,
		HTTPAddr:        "127.0.0.1:0",
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("StartDaemon: %v", err)
	}
	return d
}

// waitMemberState polls the membership table until a slot reaches the
// wanted state; admission and lease expiry are asynchronous.
func waitMemberState(t *testing.T, d *Daemon, slot int, want core.MemberState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if got := d.members.State(slot); got == want {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("slot %d stuck in %s, want %s", slot, got, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// churnWrite (re)writes every named array with a seed-derived pattern
// through a fresh session.
func churnWrite(t *testing.T, addr string, names []string, nodes int, seed int64) {
	t.Helper()
	s, err := Dial(SessionConfig{Addr: addr, Nodes: nodes, Tenant: "churn"})
	if err != nil {
		t.Fatalf("dial for write: %v", err)
	}
	defer s.Close() //nolint:errcheck
	arrs := make([]*Array, len(names))
	for i, name := range names {
		arrs[i] = sessionArray(t, name, nodes)
		if err := s.Create(arrs[i]); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
	}
	err = s.Run(func(n *Node) error {
		for i, a := range arrs {
			buf := make([]byte, n.ChunkBytes(a))
			fillPattern(buf, seed+int64(i*64+n.Rank()))
			if err := n.Bind(a, buf); err != nil {
				return err
			}
			if err := n.WriteArray(a); err != nil {
				return fmt.Errorf("write %s: %w", names[i], err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("churn write (seed %d): %v", seed, err)
	}
}

// churnVerify reads every named array back and checks it bit-exact
// against the seed-derived pattern churnWrite used.
func churnVerify(t *testing.T, addr string, names []string, nodes int, seed int64) {
	t.Helper()
	s, err := Dial(SessionConfig{Addr: addr, Nodes: nodes, Tenant: "churn"})
	if err != nil {
		t.Fatalf("dial for verify: %v", err)
	}
	defer s.Close() //nolint:errcheck
	arrs := make([]*Array, len(names))
	for i, name := range names {
		if arrs[i], err = s.Open(name); err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
	}
	err = s.Run(func(n *Node) error {
		for i, a := range arrs {
			buf := make([]byte, n.ChunkBytes(a))
			if err := n.Bind(a, buf); err != nil {
				return err
			}
			if err := n.ReadArray(a); err != nil {
				return fmt.Errorf("read %s: %w", names[i], err)
			}
			want := make([]byte, len(buf))
			fillPattern(want, seed+int64(i*64+n.Rank()))
			if !bytes.Equal(buf, want) {
				return fmt.Errorf("%s chunk %d: read differs from written", names[i], n.Rank())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("churn verify (seed %d): %v", seed, err)
	}
}

// TestDaemonElasticJoinDrain is the membership acceptance walk: data
// written before a join is readable after it, the /servers endpoint
// tracks the pool, an HTTP-driven drain migrates the data off and the
// node exits clean, and the whole story lands in the event log.
func TestDaemonElasticJoinDrain(t *testing.T) {
	dir := t.TempDir()
	d := startElasticDaemon(t, dir, 4, 0, 0) // default 10s lease: no losses here
	names := []string{"E0", "E1"}
	churnWrite(t, d.Addr(), names, 2, 700)

	joinDir := filepath.Join(dir, "join-a")
	n, err := JoinIONode(IONodeConfig{Addr: d.Addr(), Dir: joinDir, Name: "node-a", Logf: t.Logf})
	if err != nil {
		t.Fatalf("JoinIONode: %v", err)
	}
	if n.Slot() != 2 {
		t.Fatalf("joiner got slot %d, want 2 (lowest vacant)", n.Slot())
	}
	waitMemberState(t, d, 2, core.MemberActive, 5*time.Second)
	// Serialize behind the join-triggered rebalance so the readback sees
	// a settled placement.
	if err := d.Rebalance("test settle"); err != nil {
		t.Fatalf("rebalance after join: %v", err)
	}
	churnVerify(t, d.Addr(), names, 2, 700)

	// The membership table over HTTP.
	var pool struct {
		Epoch   uint32 `json:"epoch"`
		Active  int    `json:"active"`
		Servers []struct {
			Slot  int    `json:"slot"`
			State string `json:"state"`
			Local bool   `json:"local"`
			Addr  string `json:"addr"`
		} `json:"servers"`
	}
	code, body := httpGet(t, "http://"+d.HTTPAddr()+"/servers")
	if code != http.StatusOK {
		t.Fatalf("/servers: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &pool); err != nil {
		t.Fatalf("/servers payload: %v in %s", err, body)
	}
	if pool.Active != 3 || len(pool.Servers) != 4 || pool.Epoch < 2 {
		t.Fatalf("/servers after join = %+v", pool)
	}
	if s := pool.Servers[2]; s.State != "active" || s.Local || s.Addr != "node-a" {
		t.Fatalf("joined slot row = %+v", s)
	}

	// Drain over HTTP — the same path pandastat drain-server takes.
	resp, err := http.Post("http://"+d.HTTPAddr()+"/drain-server?slot=2", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /drain-server: %v", err)
	}
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /drain-server: %d", resp.StatusCode)
	}
	if err := n.Wait(); err != nil {
		t.Fatalf("drained node exited dirty: %v", err)
	}
	if st := d.members.State(2); st != core.MemberAbsent {
		t.Fatalf("slot 2 after drain = %s, want absent", st)
	}
	churnVerify(t, d.Addr(), names, 2, 700)

	if err := d.Drain(); err != nil {
		t.Fatalf("daemon drain: %v", err)
	}
	for _, kind := range []string{"server_join", "server_drain", "server_left", "rebalance_start", "rebalance_done"} {
		if len(eventsOf(t, dir, kind)) == 0 {
			t.Errorf("no %q event in events.jsonl", kind)
		}
	}
	disks := make([]storage.Disk, 0, 3)
	for _, p := range []string{dir + "/ion0", dir + "/ion1", joinDir} {
		dsk, err := storage.NewOSDisk(p)
		if err != nil {
			t.Fatal(err)
		}
		disks = append(disks, dsk)
	}
	rep, err := storage.Scrub(disks, false)
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("post-drain scrub unhealthy: %+v", rep.Issues)
	}
}

// TestDaemonElasticChurn is the fixed-seed chaos battery the elastic
// pool must survive: joins, a kill racing a live migration, lease-based
// loss detection, drains, and a slot reused after loss — with every
// array bit-exact at each checkpoint, the final directory set clean
// under scrub, and zero leaked leases.
func TestDaemonElasticChurn(t *testing.T) {
	dir := t.TempDir()
	// Short leases so a kill is detected in ~1.5s instead of 10s.
	d := startElasticDaemon(t, dir, 5, 1200*time.Millisecond, 300*time.Millisecond)
	names := []string{"CH0", "CH1", "CH2"}
	churnWrite(t, d.Addr(), names, 2, 1000)
	churnVerify(t, d.Addr(), names, 2, 1000)

	// Round 1: a node joins; pre-join data must survive the rebalance.
	dir1 := filepath.Join(dir, "join1")
	n1, err := JoinIONode(IONodeConfig{Addr: d.Addr(), Dir: dir1, Name: "j1", Logf: t.Logf})
	if err != nil {
		t.Fatalf("join 1: %v", err)
	}
	waitMemberState(t, d, n1.Slot(), core.MemberActive, 5*time.Second)
	if err := d.Rebalance("round 1 settle"); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	churnVerify(t, d.Addr(), names, 2, 1000)

	// Round 2: a second node joins and is killed while a rebalance is
	// running. The migration must replan around the corpse, the lease
	// must declare it lost, and a full rewrite afterwards must land
	// cleanly on the survivors.
	dir2 := filepath.Join(dir, "join2")
	n2, err := JoinIONode(IONodeConfig{Addr: d.Addr(), Dir: dir2, Name: "j2", Logf: t.Logf})
	if err != nil {
		t.Fatalf("join 2: %v", err)
	}
	lostSlot := n2.Slot()
	waitMemberState(t, d, lostSlot, core.MemberActive, 5*time.Second)
	chaos := make(chan error, 1)
	go func() { chaos <- d.Rebalance("round 2 chaos") }()
	time.Sleep(25 * time.Millisecond)
	n2.Kill()
	if err := <-chaos; err != nil {
		t.Logf("rebalance raced the kill (tolerated): %v", err)
	}
	waitMemberState(t, d, lostSlot, core.MemberLost, 15*time.Second)
	churnWrite(t, d.Addr(), names, 2, 2000)
	churnVerify(t, d.Addr(), names, 2, 2000)

	// Round 3: drain the first joiner; its chunks migrate off and it
	// exits clean.
	if err := d.DrainServer(n1.Slot()); err != nil {
		t.Fatalf("drain slot %d: %v", n1.Slot(), err)
	}
	if err := n1.Wait(); err != nil {
		t.Fatalf("drained node 1 exited dirty: %v", err)
	}
	churnVerify(t, d.Addr(), names, 2, 2000)

	// Round 4: a fresh node reuses the drained slot (lowest vacancy
	// first — the lost slot stays behind it in line).
	dir3 := filepath.Join(dir, "join3")
	n3, err := JoinIONode(IONodeConfig{Addr: d.Addr(), Dir: dir3, Name: "j3", Logf: t.Logf})
	if err != nil {
		t.Fatalf("join 3: %v", err)
	}
	if n3.Slot() != n1.Slot() {
		t.Fatalf("rejoin got slot %d, want the drained slot %d", n3.Slot(), n1.Slot())
	}
	waitMemberState(t, d, n3.Slot(), core.MemberActive, 5*time.Second)
	if err := d.Rebalance("round 4 settle"); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	churnWrite(t, d.Addr(), names, 2, 3000)
	churnVerify(t, d.Addr(), names, 2, 3000)

	// Round 5: drain it back out; the pool returns to its resident two.
	if err := d.DrainServer(n3.Slot()); err != nil {
		t.Fatalf("drain slot %d: %v", n3.Slot(), err)
	}
	if err := n3.Wait(); err != nil {
		t.Fatalf("drained node 3 exited dirty: %v", err)
	}
	churnVerify(t, d.Addr(), names, 2, 3000)

	if leases := d.members.Leases(); leases != 0 {
		t.Fatalf("leaked leases after churn: %d", leases)
	}
	if active := d.members.ActiveCount(); active != 2 {
		t.Fatalf("active members after churn = %d, want the 2 residents", active)
	}
	if err := d.Drain(); err != nil {
		t.Fatalf("daemon drain: %v", err)
	}

	for _, kind := range []string{"server_join", "server_drain", "server_left", "server_lost", "rebalance_start", "rebalance_done"} {
		if len(eventsOf(t, dir, kind)) == 0 {
			t.Errorf("no %q event in events.jsonl", kind)
		}
	}
	// fsck-grade sweep over every surviving directory, including the
	// killed node's: a kill mid-commit may leave warn-level debris there
	// but never a broken committed promise.
	disks := make([]storage.Disk, 0, 5)
	for _, p := range []string{dir + "/ion0", dir + "/ion1", dir1, dir2, dir3} {
		dsk, err := storage.NewOSDisk(p)
		if err != nil {
			t.Fatal(err)
		}
		disks = append(disks, dsk)
	}
	rep, err := storage.Scrub(disks, false)
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("post-churn scrub unhealthy: %+v", rep.Issues)
	}
}

// TestDaemonJoinPoolFull: a pool with no vacancy refuses a joiner with
// the typed busy error.
func TestDaemonJoinPoolFull(t *testing.T) {
	d := startTestDaemon(t, t.TempDir(), Tuning{}) // MaxIONodes = IONodes
	defer d.Drain()                                //nolint:errcheck
	if _, err := JoinIONode(IONodeConfig{Addr: d.Addr()}); !errors.Is(err, ErrBusy) {
		t.Fatalf("full-pool join error = %v, want ErrBusy", err)
	}
}

// TestDialRetryUnavailable: a dial against a dead address burns its
// budget retrying, then fails with the typed sentinel.
func TestDialRetryUnavailable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() //nolint:errcheck

	start := time.Now()
	_, err = Dial(SessionConfig{Addr: addr, Nodes: 1, DialBudget: 300 * time.Millisecond})
	if !errors.Is(err, ErrDaemonUnavailable) {
		t.Fatalf("dead-address dial error = %v, want ErrDaemonUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budgeted dial ran %v, want well under the 5s default", elapsed)
	}
}

// TestDialRetryEventualListener: the dial keeps retrying with backoff
// and succeeds once something starts listening.
func TestDialRetryEventualListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() //nolint:errcheck

	lnCh := make(chan net.Listener, 1)
	go func() {
		time.Sleep(250 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			t.Errorf("relisten on %s: %v", addr, err)
			lnCh <- nil
			return
		}
		lnCh <- ln2
	}()
	conn, err := dialRetry(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dialRetry never reached the late listener: %v", err)
	}
	conn.Close() //nolint:errcheck
	if ln2 := <-lnCh; ln2 != nil {
		ln2.Close() //nolint:errcheck
	}
}
